#include "src/svc/query_service.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/eval/batch.h"
#include "src/obs/budget.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"

namespace eclarity {
namespace {

// Service instrumentation: resolved once, relaxed increments afterwards.
struct SvcCounters {
  Counter& queries;
  Counter& batches;
  Counter& batch_queries;
  Counter& cache_hits;
  Counter& cache_misses;
  Counter& cache_evictions;
  Counter& tl_fold_hits;
  Counter& tl_fold_misses;
  Counter& snapshot_swaps;
  Counter& mc_requests;
  Counter& profile_fingerprints;

  static SvcCounters& Get() {
    static SvcCounters* counters = new SvcCounters{
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_queries_total",
            "queries dispatched through QueryService"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_batches_total", "EvaluateBatch calls"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_batch_queries_total",
            "queries submitted via EvaluateBatch"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_cache_hits_total",
            "QueryService enumeration-cache hits (all shards)"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_cache_misses_total",
            "QueryService enumeration-cache misses (all shards)"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_cache_evictions_total",
            "QueryService enumeration-cache evictions (all shards)"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_tl_fold_hits_total",
            "exact-fold lookups answered by the thread-local slot cache"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_tl_fold_misses_total",
            "exact-fold lookups that fell through to the sharded cache"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_snapshot_swaps_total",
            "profile/program snapshots published"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_mc_requests_total",
            "Monte Carlo requests run on the service pool"),
        MetricsRegistry::Global().GetCounter(
            "eclarity_svc_profile_fingerprints_total",
            "effective-profile merges + fingerprints computed for "
            "override-carrying exact queries"),
    };
    return *counters;
  }
};

// Per-kind sampled query latency, resolved once like SvcCounters.
struct SvcLatency {
  LatencyHistogram& expected;
  LatencyHistogram& distribution;
  LatencyHistogram& montecarlo;
  LatencyHistogram& sample;

  LatencyHistogram& For(QueryKind kind) {
    switch (kind) {
      case QueryKind::kExpected:
        return expected;
      case QueryKind::kDistribution:
        return distribution;
      case QueryKind::kMonteCarlo:
        return montecarlo;
      case QueryKind::kSample:
        return sample;
    }
    return expected;
  }

  static SvcLatency& Get() {
    static SvcLatency* latency = new SvcLatency{
        MetricsRegistry::Global().GetLatencyHistogram(
            "eclarity_svc_latency_ns_expected",
            "sampled Expected query latency (ns)"),
        MetricsRegistry::Global().GetLatencyHistogram(
            "eclarity_svc_latency_ns_distribution",
            "sampled Distribution query latency (ns)"),
        MetricsRegistry::Global().GetLatencyHistogram(
            "eclarity_svc_latency_ns_montecarlo",
            "sampled Monte Carlo query latency (ns)"),
        MetricsRegistry::Global().GetLatencyHistogram(
            "eclarity_svc_latency_ns_sample",
            "sampled Sample query latency (ns)"),
    };
    return *latency;
  }
};

// Estimated telemetry nanoseconds spent *inside* the current sampled query
// (phase spans and journal records). The QueryTimer subtracts this from the
// sampled duration before crediting work and charges it as observability
// instead, so phase instrumentation cannot launder itself into the work
// side of the overhead ratio.
thread_local double tl_phase_obs_ns = 0.0;

// Batch-scope work accounting. Inside EvaluateBatch the per-item spans only
// cover pass-1 probes — the shared group passes and per-batch setup run
// outside them — so per-item timers must not credit work (the batch-level
// timer owns the whole wall time) and instead accumulate their
// instrumentation cost here for the batch timer to subtract.
thread_local bool tl_batch_active = false;
thread_local double tl_batch_obs_ns = 0.0;

// Records an instantaneous sampled event (the journal stamps the clock).
void JournalInstant(JournalEventKind kind, uint64_t a) {
  Journal::Global().Record(kind, a);
  tl_phase_obs_ns += 2.0 * ObsBudget::Global().clock_read_ns();
}

// Closes a sampled phase span opened at `t0` (costs two clock reads plus
// the record itself, estimated at one more clock-read-equivalent).
void JournalPhase(JournalEventKind kind, uint64_t a, uint64_t t0) {
  Journal::Global().Record(kind, a, 0, t0, ObsNowNs() - t0);
  tl_phase_obs_ns += 3.0 * ObsBudget::Global().clock_read_ns();
}

// One query's observability scope. Construction decides (via the shared
// per-thread 1-in-N gate) whether this query is sampled; an unsampled query
// pays exactly one thread-local countdown and branch. A sampled query is
// timed into its kind's latency histogram, journalled as a kQuery span, and
// settled against the ObsBudget: the measured duration (minus the phase
// instrumentation recorded inside it) is credited as work scaled by the
// sampling interval, and every instrumentation cost — the timer's own clock
// reads, the phase estimates, and the interval's worth of unsampled ticks —
// is charged as observability.
class QueryTimer {
 public:
  // `credit_work=false` is the EvaluateBatch per-item mode: the span still
  // samples, journals, and feeds the latency histogram, but work crediting
  // belongs to the enclosing BatchWorkTimer (per-item spans cover only the
  // pass-1 probe, not the shared group passes).
  QueryTimer(uint32_t interval, QueryKind kind, bool credit_work = true)
      : kind_(kind), credit_work_(credit_work) {
    if (ObsSampler::Tick(interval)) {
      interval_ = interval;
      tl_phase_obs_ns = 0.0;
      start_ns_ = ObsNowNs();
    }
  }

  ~QueryTimer() {
    if (interval_ == 0) {
      return;
    }
    const uint64_t end = ObsNowNs();
    const uint64_t dur = end - start_ns_;
    SvcLatency::Get().For(kind_).Record(dur);
    Journal::Global().Record(JournalEventKind::kQuery,
                             static_cast<uint64_t>(kind_), 0, start_ns_, dur);
    ObsSampler::EndSample();
    ObsBudget& budget = ObsBudget::Global();
    const double phase_obs =
        tl_phase_obs_ns < static_cast<double>(dur) ? tl_phase_obs_ns
                                                   : static_cast<double>(dur);
    if (credit_work_) {
      budget.AddWorkNs((static_cast<double>(dur) - phase_obs) * interval_);
    }
    // after - end prices the histogram + journal + EndSample work directly;
    // the remaining clock reads and the unsampled ticks are calibrated.
    const uint64_t after = ObsNowNs();
    const double own_obs = static_cast<double>(after - end) + phase_obs +
                           3.0 * budget.clock_read_ns();
    if (!credit_work_ && tl_batch_active) {
      // Ran inside a sampled batch: this instrumentation sits inside the
      // batch's wall time and must not be credited as batch work.
      tl_batch_obs_ns += own_obs;
    }
    budget.AddObsNs(own_obs +
                    static_cast<double>(interval_) * budget.sampler_tick_ns());
  }

  QueryTimer(const QueryTimer&) = delete;
  QueryTimer& operator=(const QueryTimer&) = delete;

 private:
  const QueryKind kind_;
  const bool credit_work_ = true;
  uint32_t interval_ = 0;  // 0: this query is not sampled
  uint64_t start_ns_ = 0;
};

// Whole-batch work scope for EvaluateBatch. Per-item spans there cover only
// the pass-1 probe (memo/table hits are a few ns), while the per-batch
// setup, the grouped SoA passes, and the fix-up pass run outside them — so
// crediting work per item both undercounts (shared passes vanish) and
// distorts the ratio (a memo hit measures ~20 ns of "work" against a fixed
// per-sample telemetry cost). Instead: 1-in-N *batches* (own gate, so the
// per-item cadence that tests pin down is untouched) measure the whole call
// and credit (duration - inner instrumentation) x interval as work. The
// unsampled-batch cost is one countdown, priced like a sampler tick.
class BatchWorkTimer {
 public:
  BatchWorkTimer(uint32_t interval, size_t items) : items_(items) {
    static thread_local uint32_t countdown = 1;
    if (interval == 0 || --countdown != 0) {
      return;
    }
    countdown = interval;
    interval_ = interval;
    tl_batch_active = true;
    tl_batch_obs_ns = 0.0;
    start_ns_ = ObsNowNs();
  }

  ~BatchWorkTimer() {
    if (interval_ == 0) {
      return;
    }
    const uint64_t end = ObsNowNs();
    tl_batch_active = false;
    ObsBudget& budget = ObsBudget::Global();
    // Every item paid its own per-item sampler tick inside this wall time.
    double inner_obs = tl_batch_obs_ns +
                       static_cast<double>(items_) * budget.sampler_tick_ns();
    const double dur = static_cast<double>(end - start_ns_);
    if (inner_obs > dur) {
      inner_obs = dur;
    }
    budget.AddWorkNs((dur - inner_obs) * interval_);
    budget.AddObsNs(2.0 * budget.clock_read_ns() +
                    static_cast<double>(interval_) * budget.sampler_tick_ns());
  }

  BatchWorkTimer(const BatchWorkTimer&) = delete;
  BatchWorkTimer& operator=(const BatchWorkTimer&) = delete;

 private:
  const size_t items_;
  uint32_t interval_ = 0;  // 0: this batch is not sampled
  uint64_t start_ns_ = 0;
};

void AppendBits(std::string& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  out.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

}  // namespace

std::string QueryOutcome::Fingerprint() const {
  std::string out;
  out.push_back(static_cast<char>(kind));
  AppendBits(out, joules);
  if (distribution.has_value()) {
    for (const Atom& atom : distribution->atoms()) {
      AppendBits(out, atom.value);
      AppendBits(out, atom.probability);
    }
  }
  if (sample.has_value()) {
    sample->AppendFingerprint(out);
  }
  if (analytic) {
    out.push_back('\x01');
    AppendBits(out, error_bound);
    AppendBits(out, pruned_mass);
  }
  return out;
}

// --- Snapshot ---------------------------------------------------------------

// An immutable (program, profile) world. The evaluator is constructed once
// per program publication — lowering, interface pre-binding, and slot
// tables are paid at publish time, never on the query path — and shared by
// every snapshot that merely changes the profile.
class QueryService::Snapshot {
 public:
  // Program + evaluator bundle, shared across profile updates.
  struct Bundle {
    Bundle(Program p, uint64_t gen, const EvalOptions& eval)
        : program(std::move(p)), generation(gen), evaluator(program, eval) {}
    Program program;
    uint64_t generation;
    Evaluator evaluator;
  };

  Snapshot(std::shared_ptr<const Bundle> bundle, EcvProfile profile)
      : bundle_(std::move(bundle)),
        profile_(std::move(profile)),
        profile_fingerprint_(profile_.Fingerprint()),
        unique_id_([] {
          static std::atomic<uint64_t> next{1};
          return next.fetch_add(1, std::memory_order_relaxed);
        }()) {}

  const Bundle& bundle() const { return *bundle_; }
  std::shared_ptr<const Bundle> bundle_ptr() const { return bundle_; }
  uint64_t generation() const { return bundle_->generation; }
  const EcvProfile& profile() const { return profile_; }
  const std::string& profile_fingerprint() const {
    return profile_fingerprint_;
  }
  // Process-unique identity of this exact snapshot object. publish_seq_
  // cannot serve as one: the writer stores the snapshot before bumping the
  // sequence, so two readers observing equal sequences may hold different
  // snapshots. Memoization keyed on this id can never mix worlds.
  uint64_t unique_id() const { return unique_id_; }

 private:
  std::shared_ptr<const Bundle> bundle_;
  EcvProfile profile_;
  std::string profile_fingerprint_;
  const uint64_t unique_id_;
};

// --- Bounded Monte Carlo worker pool ----------------------------------------

class QueryService::McPool {
 public:
  McPool(size_t threads, size_t queue_limit)
      : queue_limit_(queue_limit == 0 ? 4 * std::max<size_t>(threads, 1)
                                      : queue_limit) {
    threads = std::max<size_t>(threads, 1);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Run(); });
    }
  }

  ~McPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }

  // Runs `task` on a pool worker and waits for it. Blocks while the queue
  // is at its bound (backpressure instead of unbounded growth).
  void RunAndWait(std::function<void()> task) {
    struct Done {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
    };
    auto done = std::make_shared<Done>();
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return queue_.size() < queue_limit_ || stopping_; });
      if (stopping_) {
        // Destruction while submitting: run inline rather than dropping.
        lock.unlock();
        task();
        return;
      }
      queue_.push_back([task = std::move(task), done] {
        task();
        std::lock_guard<std::mutex> lock(done->mu);
        done->done = true;
        done->cv.notify_all();
      });
    }
    not_empty_.notify_one();
    std::unique_lock<std::mutex> lock(done->mu);
    done->cv.wait(lock, [&] { return done->done; });
  }

 private:
  void Run() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) {
          return;  // stopping
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.notify_one();
      task();
    }
  }

  const size_t queue_limit_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// --- QueryService -----------------------------------------------------------

Result<std::unique_ptr<QueryService>> QueryService::Create(
    Program program, Options options, EcvProfile base_profile) {
  const std::vector<std::string> imports = program.UnresolvedCallees();
  if (!imports.empty()) {
    std::string list;
    for (const std::string& name : imports) {
      if (!list.empty()) {
        list += ", ";
      }
      list += name;
    }
    return FailedPreconditionError(
        "QueryService needs a closed program; unresolved imports: " + list);
  }
  // Force the telemetry budget's one-time calibration now: it resets the
  // thread's sampler state, so letting it run lazily inside the first
  // sampled query would clear the in-flight sample and silently drop that
  // query's phase spans from the journal.
  ObsBudget::Global();
  // The service's sharded cache replaces the per-evaluator one, and MC
  // sampling runs on the service pool: one inline worker per request.
  EvalOptions eval = options.eval;
  eval.enum_cache_capacity = 0;
  eval.mc_workers = 1;
  options.eval = eval;
  auto bundle = std::make_shared<const Snapshot::Bundle>(std::move(program),
                                                         /*gen=*/0, eval);
  auto snapshot =
      std::make_shared<const Snapshot>(std::move(bundle),
                                       std::move(base_profile));
  // Specialize the bytecode program against the snapshot's own profile
  // object so the evaluator's pointer fast path matches on the query path.
  snapshot->bundle().evaluator.PrepareSpecialized(snapshot->profile());
  return std::unique_ptr<QueryService>(
      new QueryService(std::move(snapshot), std::move(options)));
}

QueryService::QueryService(std::shared_ptr<const Snapshot> initial,
                           Options options)
    : options_(options),
      svc_id_([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      snapshot_(std::move(initial)),
      publish_seq_(1),
      next_generation_(1),
      cache_(options.cache_capacity, options.cache_shards),
      mc_pool_(std::make_unique<McPool>(options.mc_pool_threads,
                                        options.mc_queue_limit)) {}

QueryService::~QueryService() = default;

const std::shared_ptr<const QueryService::Snapshot>&
QueryService::SnapshotSlot() const {
  // Per-thread snapshot cache, revalidated against publish_seq_: while no
  // writer publishes, acquisition is one atomic load instead of taking
  // the snapshot mutex. A thread that stops querying keeps
  // its last snapshot pinned until it queries again or exits — standard
  // RCU-reader behaviour, bounded by the thread count.
  struct TlSnapshot {
    uint64_t svc_id = 0;
    uint64_t seq = 0;
    std::shared_ptr<const Snapshot> snapshot;
  };
  thread_local TlSnapshot tl;
  const uint64_t seq = publish_seq_.load(std::memory_order_acquire);
  if (tl.svc_id == svc_id_ && tl.seq == seq) {
    return tl.snapshot;
  }
  // The writer publishes the snapshot (under the mutex) before bumping
  // publish_seq_, so having observed `seq` guarantees this read sees at
  // least that publication — possibly a newer one, which is fine: the
  // freshness contract is monotonic, not exact.
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    tl.snapshot = snapshot_;
  }
  tl.svc_id = svc_id_;
  tl.seq = seq;
  return tl.snapshot;
}

std::shared_ptr<const QueryService::Snapshot> QueryService::AcquireSnapshot()
    const {
  return SnapshotSlot();
}

void QueryService::UpdateProfile(EcvProfile profile) {
  // Readers that already hold the old snapshot keep it alive through their
  // shared_ptr; publication only redirects *future* acquisitions.
  std::shared_ptr<const Snapshot> current;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current = snapshot_;
  }
  auto next = std::make_shared<const Snapshot>(current->bundle_ptr(),
                                               std::move(profile));
  // Re-specialize from the already-lowered IR before publication. The
  // compile runs outside every snapshot and evaluator lock: readers on the
  // old snapshot keep the generic program (profile fingerprints no longer
  // match) and are never blocked.
  const uint64_t generation = next->generation();
  const uint64_t spec_t0 = ObsNowNs();
  next->bundle().evaluator.PrepareSpecialized(next->profile());
  Journal::Global().Record(JournalEventKind::kRespecialize, generation, 0,
                           spec_t0, ObsNowNs() - spec_t0);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  publish_seq_.fetch_add(1, std::memory_order_release);
  SvcCounters::Get().snapshot_swaps.Increment();
  // Writer-path events are rare enough to journal unsampled; their cost is
  // publish-time, not steady-state query work, so the budget skips them.
  Journal::Global().Record(JournalEventKind::kSnapshotSwap, generation,
                           /*b=*/1);
}

Status QueryService::UpdateProgram(Program program) {
  if (!program.UnresolvedCallees().empty()) {
    return FailedPreconditionError(
        "UpdateProgram needs a closed program (unresolved imports remain)");
  }
  const uint64_t generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);
  auto bundle = std::make_shared<const Snapshot::Bundle>(
      std::move(program), generation, options_.eval);
  std::shared_ptr<const Snapshot> current;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current = snapshot_;
  }
  auto next =
      std::make_shared<const Snapshot>(std::move(bundle), current->profile());
  const uint64_t spec_t0 = ObsNowNs();
  next->bundle().evaluator.PrepareSpecialized(next->profile());
  Journal::Global().Record(JournalEventKind::kRespecialize, generation, 0,
                           spec_t0, ObsNowNs() - spec_t0);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  publish_seq_.fetch_add(1, std::memory_order_release);
  SvcCounters::Get().snapshot_swaps.Increment();
  Journal::Global().Record(JournalEventKind::kSnapshotSwap, generation,
                           /*b=*/2);
  return OkStatus();
}

uint64_t QueryService::snapshot_generation() const {
  return AcquireSnapshot()->generation();
}

void QueryService::AppendCacheKeyPrefix(const Snapshot& snapshot,
                                        const Query& query,
                                        std::string& out) const {
  out.append(reinterpret_cast<const char*>(&snapshot.bundle().generation),
             sizeof(uint64_t));
  out += query.interface;
  out.push_back('\x1f');
  for (const Value& arg : query.args) {
    arg.AppendFingerprint(out);
  }
  out.push_back('\x1f');
}

void QueryService::AppendCacheKey(const Snapshot& snapshot,
                                  const Query& query,
                                  std::string& out) const {
  AppendCacheKeyPrefix(snapshot, query, out);
  if (query.profile.empty()) {
    out += snapshot.profile_fingerprint();
  } else {
    EcvProfile merged = snapshot.profile();
    merged.MergeFrom(query.profile);
    SvcCounters::Get().profile_fingerprints.Increment();
    out += merged.Fingerprint();
  }
}

std::string QueryService::CacheKey(const Snapshot& snapshot,
                                   const Query& query) const {
  std::string key;
  key.reserve(96);
  AppendCacheKey(snapshot, query, key);
  return key;
}

DistMode QueryService::EffectiveMode(const Query& query) const {
  return query.dist_mode.value_or(options_.eval.dist_mode);
}

Result<CertifiedDistribution> QueryService::CertifiedOn(
    const Snapshot& snapshot, const Query& query, DistMode mode) const {
  // The snapshot evaluator's analytic cache keys on (interface, args,
  // profile, mode, threshold, calibration), so concurrent certified queries
  // dedup there; a program swap replaces the evaluator wholesale, which
  // rekeys by construction.
  const Evaluator& evaluator = snapshot.bundle().evaluator;
  if (query.profile.empty()) {
    return evaluator.EvalCertifiedMode(query.interface, query.args,
                                       snapshot.profile(),
                                       options_.calibration, mode);
  }
  EcvProfile merged = snapshot.profile();
  merged.MergeFrom(query.profile);
  return evaluator.EvalCertifiedMode(query.interface, query.args, merged,
                                     options_.calibration, mode);
}

namespace {

// Per-thread direct-mapped fold cache: a repeated exact query is answered
// with one key build, one hash, and one string compare — no shard lock, no
// refcount traffic. The answer path is gated on a non-zero shared-cache
// capacity so a deliberately uncached service still pays (and counts) one
// shard miss per lookup, but the slot always pins the most recently
// returned entry (svc_id 0 marks a pin that must not answer later lookups).
// Entries are immutable shared_ptrs and the key embeds the program
// generation and effective-profile fingerprint, so a stale slot — even one
// outliving a shard eviction or snapshot swap — can only ever answer with
// the exact fold its key names.
struct TlFoldSlot {
  uint64_t svc_id = 0;
  std::string key;
  QueryService::SharedFold entry;
};
constexpr size_t kTlFoldSlots = 128;  // power of two; ~7 KiB per thread

TlFoldSlot& TlFoldSlotFor(const std::string& key) {
  thread_local std::array<TlFoldSlot, kTlFoldSlots> slots;
  return slots[std::hash<std::string>{}(key) & (kTlFoldSlots - 1)];
}

}  // namespace

QueryService::SharedFold QueryService::LookupFold(
    const std::string& key) const {
  TlFoldSlot& slot = TlFoldSlotFor(key);
  const bool use_tl = cache_.capacity() > 0;
  // Phase spans (cache lookup, eval, fold) are recorded only inside a
  // query the QueryTimer already chose to sample, so the unsampled fast
  // path pays one thread-local bool read here.
  const bool sampled = ObsSampler::Active();
  const uint64_t lookup_t0 = sampled ? ObsNowNs() : 0;
  if (use_tl && slot.svc_id == svc_id_ && slot.key == key) {
    SvcCounters::Get().cache_hits.Increment();
    SvcCounters::Get().tl_fold_hits.Increment();
    if (sampled) {
      JournalPhase(JournalEventKind::kCacheLookup, /*a=*/1, lookup_t0);
    }
    return slot.entry;
  }
  if (use_tl) {
    SvcCounters::Get().tl_fold_misses.Increment();
  }
  if (std::optional<SharedFold> hit = cache_.Get(key)) {
    SvcCounters::Get().cache_hits.Increment();
    slot.svc_id = svc_id_;
    slot.key = key;
    slot.entry = std::move(*hit);
    if (sampled) {
      JournalPhase(JournalEventKind::kCacheLookup, /*a=*/2, lookup_t0);
    }
    return slot.entry;
  }
  SvcCounters::Get().cache_misses.Increment();
  if (sampled) {
    JournalPhase(JournalEventKind::kCacheLookup, /*a=*/0, lookup_t0);
  }
  return nullptr;
}

void QueryService::StoreFold(const std::string& key, SharedFold entry) const {
  if (cache_.Put(key, entry)) {
    SvcCounters::Get().cache_evictions.Increment();
    // Always-on: evictions are rare and explain hit-rate cliffs.
    Journal::Global().Record(JournalEventKind::kShardEviction);
  }
  const bool use_tl = cache_.capacity() > 0;
  TlFoldSlot& slot = TlFoldSlotFor(key);
  slot.svc_id = use_tl ? svc_id_ : 0;
  slot.key = use_tl ? key : std::string();
  slot.entry = std::move(entry);
}

Result<const QueryService::ExactFold*> QueryService::FoldCached(
    const Snapshot& snapshot, const Query& query,
    const std::string* key_hint) const {
  // Thread-local scratch: steady-state key builds allocate nothing.
  thread_local std::string scratch;
  const std::string* key = key_hint;
  if (key == nullptr) {
    scratch.clear();
    AppendCacheKey(snapshot, query, scratch);
    key = &scratch;
  }
  if (SharedFold hit = LookupFold(*key)) {
    // The thread-local slot LookupFold touched pins the entry past this
    // local handle; callers consume the pointer immediately.
    return hit.get();
  }
  const bool sampled = ObsSampler::Active();
  const uint64_t eval_t0 = sampled ? ObsNowNs() : 0;
  const Evaluator& evaluator = snapshot.bundle().evaluator;
  Result<SharedOutcomes> outcomes = [&]() -> Result<SharedOutcomes> {
    if (query.profile.empty()) {
      return evaluator.EnumerateShared(query.interface, query.args,
                                       snapshot.profile());
    }
    EcvProfile merged = snapshot.profile();
    merged.MergeFrom(query.profile);
    return evaluator.EnumerateShared(query.interface, query.args, merged);
  }();
  if (!outcomes.ok()) {
    return outcomes.status();  // errors are never cached
  }
  if (sampled) {
    JournalPhase(JournalEventKind::kEval, (*outcomes)->size(), eval_t0);
  }
  // Fold through Distribution's canonical atom order — the exact path
  // Evaluator::ExpectedEnergy takes — so service answers are bit-identical
  // to the single-threaded engine's. Folding once at insert means a cache
  // hit serves Expected and Distribution queries with no per-query fold.
  const uint64_t fold_t0 = sampled ? ObsNowNs() : 0;
  std::vector<Atom> atoms;
  atoms.reserve((*outcomes)->size());
  for (const WeightedOutcome& o : **outcomes) {
    ECLARITY_ASSIGN_OR_RETURN(double joules,
                              OutcomeJoules(o.value, options_.calibration));
    atoms.push_back({joules, o.probability});
  }
  ECLARITY_ASSIGN_OR_RETURN(Distribution dist,
                            Distribution::Categorical(std::move(atoms)));
  const double mean = dist.Mean();
  if (sampled) {
    JournalPhase(JournalEventKind::kFold, dist.atoms().size(), fold_t0);
  }
  auto entry = std::make_shared<const ExactFold>(
      ExactFold{std::move(dist), mean});
  const ExactFold* raw = entry.get();
  StoreFold(*key, std::move(entry));  // the thread-local slot pins `raw`
  return raw;
}

Result<Energy> QueryService::ExpectedOn(const Snapshot& snapshot,
                                        const Query& query) const {
  const DistMode mode = EffectiveMode(query);
  if (mode != DistMode::kEnumerate) {
    ECLARITY_ASSIGN_OR_RETURN(CertifiedDistribution cd,
                              CertifiedOn(snapshot, query, mode));
    return Energy::Joules(cd.mean);
  }
  ECLARITY_ASSIGN_OR_RETURN(const ExactFold* fold,
                            FoldCached(snapshot, query, nullptr));
  return Energy::Joules(fold->mean);
}

Result<Energy> QueryService::Expected(const Query& query) const {
  SvcCounters::Get().queries.Increment();
  QueryTimer timer(options_.obs_sample_interval, QueryKind::kExpected);
  const Snapshot& snapshot = AcquireSnapshotRef();
  if (ObsSampler::Active()) {
    JournalInstant(JournalEventKind::kSnapshotPin, snapshot.generation());
  }
  return ExpectedOn(snapshot, query);
}

Result<Distribution> QueryService::EvalDistribution(const Query& query) const {
  SvcCounters::Get().queries.Increment();
  QueryTimer timer(options_.obs_sample_interval, QueryKind::kDistribution);
  const Snapshot& snapshot = AcquireSnapshotRef();
  if (ObsSampler::Active()) {
    JournalInstant(JournalEventKind::kSnapshotPin, snapshot.generation());
  }
  ECLARITY_ASSIGN_OR_RETURN(const ExactFold* fold,
                            FoldCached(snapshot, query, nullptr));
  return fold->distribution;
}

Result<Energy> QueryService::MonteCarloOn(const Snapshot& snapshot,
                                          const Query& query) const {
  SvcCounters::Get().mc_requests.Increment();
  Result<Energy> result = InternalError("MC task never ran");
  mc_pool_->RunAndWait([&] {
    // The stream is a pure function of the query's seed: concurrent
    // execution and single-threaded replay draw identical samples.
    Rng rng(query.seed);
    const Evaluator& evaluator = snapshot.bundle().evaluator;
    if (query.profile.empty()) {
      result = evaluator.MonteCarloMean(query.interface, query.args,
                                        snapshot.profile(), rng, query.samples,
                                        options_.calibration);
      return;
    }
    EcvProfile merged = snapshot.profile();
    merged.MergeFrom(query.profile);
    result = evaluator.MonteCarloMean(query.interface, query.args, merged, rng,
                                      query.samples, options_.calibration);
  });
  return result;
}

Result<Energy> QueryService::MonteCarlo(const Query& query) const {
  SvcCounters::Get().queries.Increment();
  QueryTimer timer(options_.obs_sample_interval, QueryKind::kMonteCarlo);
  // MonteCarloOn blocks this thread until the pool task finishes, so the
  // borrowed snapshot stays pinned for the whole call (and the sampled
  // span covers queueing plus execution — the latency a caller sees).
  const Snapshot& snapshot = AcquireSnapshotRef();
  if (ObsSampler::Active()) {
    JournalInstant(JournalEventKind::kSnapshotPin, snapshot.generation());
  }
  return MonteCarloOn(snapshot, query);
}

Result<Value> QueryService::Sample(const Query& query) const {
  SvcCounters::Get().queries.Increment();
  QueryTimer timer(options_.obs_sample_interval, QueryKind::kSample);
  const Snapshot& snapshot = AcquireSnapshotRef();
  if (ObsSampler::Active()) {
    JournalInstant(JournalEventKind::kSnapshotPin, snapshot.generation());
  }
  Rng rng(query.seed);
  const Evaluator& evaluator = snapshot.bundle().evaluator;
  if (query.profile.empty()) {
    return evaluator.EvalSampled(query.interface, query.args,
                                 snapshot.profile(), rng);
  }
  EcvProfile merged = snapshot.profile();
  merged.MergeFrom(query.profile);
  return evaluator.EvalSampled(query.interface, query.args, merged, rng);
}

Result<QueryOutcome> QueryService::DispatchOn(const Snapshot& snapshot,
                                              const Query& query) const {
  QueryOutcome outcome;
  outcome.kind = query.kind;
  const DistMode mode = EffectiveMode(query);
  switch (query.kind) {
    case QueryKind::kExpected: {
      if (mode != DistMode::kEnumerate) {
        ECLARITY_ASSIGN_OR_RETURN(CertifiedDistribution cd,
                                  CertifiedOn(snapshot, query, mode));
        outcome.joules = cd.mean;
        outcome.analytic = true;
        outcome.error_bound = cd.mean_error_bound;
        outcome.pruned_mass = cd.pruned_mass;
        return outcome;
      }
      ECLARITY_ASSIGN_OR_RETURN(Energy energy, ExpectedOn(snapshot, query));
      outcome.joules = energy.joules();
      return outcome;
    }
    case QueryKind::kDistribution: {
      if (mode != DistMode::kEnumerate) {
        ECLARITY_ASSIGN_OR_RETURN(CertifiedDistribution cd,
                                  CertifiedOn(snapshot, query, mode));
        if (!cd.has_distribution) {
          return FailedPreconditionError(
              "moments-only evaluation materialises no distribution; "
              "use kExpected");
        }
        outcome.joules = cd.mean;
        outcome.distribution = std::move(cd.distribution);
        outcome.analytic = true;
        outcome.error_bound = cd.mean_error_bound;
        outcome.pruned_mass = cd.pruned_mass;
        return outcome;
      }
      ECLARITY_ASSIGN_OR_RETURN(const ExactFold* fold,
                                FoldCached(snapshot, query, nullptr));
      outcome.joules = fold->mean;
      outcome.distribution = fold->distribution;
      return outcome;
    }
    case QueryKind::kMonteCarlo: {
      ECLARITY_ASSIGN_OR_RETURN(Energy energy, MonteCarloOn(snapshot, query));
      outcome.joules = energy.joules();
      return outcome;
    }
    case QueryKind::kSample: {
      Rng rng(query.seed);
      const Evaluator& evaluator = snapshot.bundle().evaluator;
      Result<Value> value = [&]() -> Result<Value> {
        if (query.profile.empty()) {
          return evaluator.EvalSampled(query.interface, query.args,
                                       snapshot.profile(), rng);
        }
        EcvProfile merged = snapshot.profile();
        merged.MergeFrom(query.profile);
        return evaluator.EvalSampled(query.interface, query.args, merged, rng);
      }();
      if (!value.ok()) {
        return value.status();
      }
      outcome.sample = *value;
      return outcome;
    }
  }
  return InternalError("unknown query kind");
}

Result<QueryOutcome> QueryService::Dispatch(const Query& query) const {
  SvcCounters::Get().queries.Increment();
  QueryTimer timer(options_.obs_sample_interval, query.kind);
  const Snapshot& snapshot = AcquireSnapshotRef();
  if (ObsSampler::Active()) {
    JournalInstant(JournalEventKind::kSnapshotPin, snapshot.generation());
  }
  return DispatchOn(snapshot, query);
}

namespace {

// --- EvaluateBatch dedup scratch --------------------------------------------
//
// The batch fast path must stay far below one Dispatch per item: N items
// over K distinct queries pay K key builds and K cache lookups, not N.
// Base-profile items dedup through an open-addressed table keyed by a raw
// content hash (interface bytes + argument bits), so repeated items never
// materialise a string cache key or touch a node-based map. The scratch is
// thread-local and reused across batches — distinct records keep their key
// strings' capacity, so the all-hit steady state allocates nothing.

// Hash quality only costs probe time — every lookup is confirmed by a full
// bit-level content compare — so the mixers favour speed: forced inline
// (the per-item interface hash is the hot loop's largest line item when
// outlined) and two accumulator lanes so consecutive 8-byte chunks multiply
// in parallel instead of serialising on one chain.
#if defined(__GNUC__)
#define ECLARITY_BATCH_INLINE inline __attribute__((always_inline))
#else
#define ECLARITY_BATCH_INLINE inline
#endif

ECLARITY_BATCH_INLINE uint64_t BatchHashMix(uint64_t h, uint64_t v) {
  h = (h ^ v) * 0x9E3779B97F4A7C15ull;
  return h ^ (h >> 32);
}

ECLARITY_BATCH_INLINE uint64_t BatchHashBytes(uint64_t h, const char* data,
                                              size_t n) {
  // Tails read a final overlapping 8-byte word instead of a variable-length
  // memcpy (which GCC lowers to a byte loop). Overlap double-mixes a few
  // bytes; harmless, every probe is confirmed by a full compare.
  uint64_t a = h ^ (n * 0x9E3779B97F4A7C15ull);
  uint64_t b = 0x517CC1B727220A95ull;
  if (n >= 8) {
    const char* p = data;
    size_t left = n;
    while (left >= 16) {
      uint64_t v0;
      uint64_t v1;
      std::memcpy(&v0, p, sizeof(v0));
      std::memcpy(&v1, p + 8, sizeof(v1));
      a = (a ^ v0) * 0x9E3779B97F4A7C15ull;
      b = (b ^ v1) * 0xC2B2AE3D27D4EB4Full;
      p += 16;
      left -= 16;
    }
    if (left >= 8) {
      uint64_t v;
      std::memcpy(&v, p, sizeof(v));
      a = (a ^ v) * 0x9E3779B97F4A7C15ull;
      p += 8;
      left -= 8;
    }
    if (left > 0) {
      uint64_t v;
      std::memcpy(&v, data + n - 8, sizeof(v));
      b = (b ^ v) * 0xC2B2AE3D27D4EB4Full;
    }
  } else if (n >= 4) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, data, sizeof(lo));
    std::memcpy(&hi, data + n - 4, sizeof(hi));
    a = (a ^ (static_cast<uint64_t>(hi) << 32 | lo)) * 0x9E3779B97F4A7C15ull;
  } else if (n > 0) {
    uint64_t v = static_cast<unsigned char>(data[0]);
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[n / 2])) << 8;
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[n - 1])) << 16;
    a = (a ^ v) * 0x9E3779B97F4A7C15ull;
  }
  uint64_t x = a ^ b;
  x ^= x >> 32;
  x *= 0x9E3779B97F4A7C15ull;
  return x ^ (x >> 32);
}

ECLARITY_BATCH_INLINE uint64_t BatchHashValue(uint64_t h, const Value& v,
                                              std::string& scratch) {
  if (v.is_number()) {
    uint64_t bits;
    const double d = v.number();
    std::memcpy(&bits, &d, sizeof(bits));
    // One mix, kind-tagged by constant: number/bool collisions are possible
    // in principle and harmless (the content compare rejects them).
    return BatchHashMix(h, bits ^ 0x4E554Dull);
  }
  if (v.is_bool()) {
    return BatchHashMix(h, v.boolean() ? 'T' : 'F');
  }
  scratch.clear();
  v.AppendFingerprint(scratch);
  return BatchHashBytes(h, scratch.data(), scratch.size());
}

// Bit-level equality, matching fingerprint keying exactly: distinct NaN or
// ±0.0 bit patterns fingerprint differently, so they must not dedup.
ECLARITY_BATCH_INLINE bool SameValueBits(const Value& a, const Value& b,
                                         std::string& sa, std::string& sb) {
  if (a.is_number()) {
    if (!b.is_number()) {
      return false;
    }
    uint64_t x;
    uint64_t y;
    const double da = a.number();
    const double db = b.number();
    std::memcpy(&x, &da, sizeof(x));
    std::memcpy(&y, &db, sizeof(y));
    return x == y;
  }
  if (a.is_bool()) {
    return b.is_bool() && a.boolean() == b.boolean();
  }
  if (!b.is_energy()) {
    return false;
  }
  sa.clear();
  sb.clear();
  a.AppendFingerprint(sa);
  b.AppendFingerprint(sb);
  return sa == sb;
}

bool SameQueryContent(const Query& a, const Query& b, std::string& sa,
                      std::string& sb) {
  if (a.interface != b.interface || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!SameValueBits(a.args[i], b.args[i], sa, sb)) {
      return false;
    }
  }
  return true;
}

// Cross-batch memo entry: a base-profile item repeated across batches is
// answered straight from the pinned fold — no cache key build, no fold
// cache lookup, no distinct record. An entry is valid only for the exact
// (service, snapshot) pair that filled it; both ids are process-unique and
// never reused, and the pinned fold is immutable, so a stale entry can
// only miss, never answer wrongly. Like the single-dispatch TL slot, the
// memo is gated on a non-zero fold-cache capacity — a deliberately
// uncached service pays (and counts) every lookup.
struct BatchMemoEntry {
  uint64_t hash = 0;
  uint64_t svc = 0;
  uint64_t snap = 0;  // 0: empty
  std::string interface;
  std::vector<Value> args;
  QueryService::SharedFold fold;
};

// Inline chunked byte compare: interface names are short (tens of bytes),
// so the libc memcmp call overhead would dominate the compare itself.
ECLARITY_BATCH_INLINE bool SameBytes(const char* a, const char* b, size_t n) {
  if (n >= 8) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      uint64_t x;
      uint64_t y;
      std::memcpy(&x, a + i, sizeof(x));
      std::memcpy(&y, b + i, sizeof(y));
      if (x != y) {
        return false;
      }
    }
    if (i == n) {
      return true;
    }
    // Overlapping final word — no variable-length (byte loop) memcpy.
    uint64_t x;
    uint64_t y;
    std::memcpy(&x, a + n - 8, sizeof(x));
    std::memcpy(&y, b + n - 8, sizeof(y));
    return x == y;
  }
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

ECLARITY_BATCH_INLINE bool MemoMatches(const BatchMemoEntry& m, const Query& q,
                                       std::string& sa, std::string& sb) {
  if (m.interface.size() != q.interface.size() ||
      m.args.size() != q.args.size() ||
      !SameBytes(m.interface.data(), q.interface.data(),
                 q.interface.size())) {
    return false;
  }
  for (size_t i = 0; i < m.args.size(); ++i) {
    if (!SameValueBits(m.args[i], q.args[i], sa, sb)) {
      return false;
    }
  }
  return true;
}

void FillMemo(BatchMemoEntry& m, uint64_t hash, uint64_t svc, uint64_t snap,
              const Query& q, QueryService::SharedFold fold) {
  m.hash = hash;
  m.svc = svc;
  m.snap = snap;
  m.interface = q.interface;  // assignment keeps capacity across refills
  m.args = q.args;
  m.fold = std::move(fold);
}

// One lane per distinct cache key. Cache hits resolve in pass 1 through the
// same LookupFold (and counters) as single dispatch; misses become lanes of
// the grouped SoA passes. Fold copies are cheap: the distribution's atoms
// are shared, not cloned.
struct BatchDistinct {
  std::string key;  // full fold-cache key, built once per distinct
  const Query* query = nullptr;
  const EcvProfile* profile = nullptr;  // effective (merged or base)
  QueryService::SharedFold fold;
  Status error;
  bool resolved = false;
  // Memo slot to fill once this distinct resolves (base-profile items
  // only, and only when the fold cache is enabled).
  BatchMemoEntry* memo_slot = nullptr;
  uint64_t memo_hash = 0;
};

struct EffProfileEntry {
  EcvProfile merged;
  std::string fingerprint;
};

struct BatchScratch {
  struct Slot {
    uint32_t stamp = 0;
    uint32_t idx = 0;
  };
  static constexpr size_t kMemoSlots = 512;  // direct-mapped, power of two
  std::vector<BatchMemoEntry> memo;          // allocated on first use
  std::vector<Slot> table;  // open-addressed; size is a power of two
  uint32_t stamp = 0;
  std::vector<BatchDistinct> distincts;  // [0, live) valid this batch
  size_t live = 0;
  std::vector<int32_t> item_distinct;  // -1: answered in pass 1
  // Override-carrying items take the interned slow path: one base-profile
  // merge + fingerprint per distinct override, string-keyed distinct dedup.
  std::deque<EffProfileEntry> eff_profiles;
  std::unordered_map<std::string, const EffProfileEntry*> override_index;
  std::unordered_map<std::string, uint32_t> key_index;
  std::string va;
  std::string vb;

  void Begin(size_t batch_size) {
    live = 0;
    item_distinct.assign(batch_size, -1);
    size_t want = 16;
    while (want < batch_size * 2) {
      want <<= 1;
    }
    if (table.size() < want) {
      table.assign(want, Slot{});
      stamp = 0;
    }
    if (++stamp == 0) {  // stamp wrapped: stale slots could alias it
      std::fill(table.begin(), table.end(), Slot{});
      stamp = 1;
    }
    if (!override_index.empty()) {
      eff_profiles.clear();
      override_index.clear();
    }
    if (!key_index.empty()) {
      key_index.clear();
    }
  }

  BatchDistinct& Acquire(uint32_t& idx_out) {
    if (live == distincts.size()) {
      distincts.emplace_back();
    }
    BatchDistinct& d = distincts[live];
    d.key.clear();  // keeps capacity across batches
    d.query = nullptr;
    d.profile = nullptr;
    d.fold = nullptr;
    d.error = Status();
    d.resolved = false;
    d.memo_slot = nullptr;
    d.memo_hash = 0;
    idx_out = static_cast<uint32_t>(live++);
    return d;
  }
};

}  // namespace

std::vector<Result<QueryOutcome>> QueryService::EvaluateBatch(
    const std::vector<Query>& batch) const {
  SvcCounters::Get().batches.Increment();
  SvcCounters::Get().batch_queries.Increment(batch.size());
  if (batch.empty()) {
    return {};
  }
  // Work is credited batch-at-a-time: see BatchWorkTimer. Covers every
  // return path, including the shared group passes below.
  BatchWorkTimer batch_timer(options_.obs_sample_interval, batch.size());
  const Snapshot& snapshot = AcquireSnapshotRef();
  // Fill-construct every slot with a default success outcome up front: one
  // tight inlined loop instead of a per-item emplace_back call (which GCC
  // outlines, growth path and all). Every slot is overwritten before
  // return — hits in pass 1, distinct answers (or errors) in the fix-up
  // pass.
  std::vector<Result<QueryOutcome>> results(
      batch.size(), Result<QueryOutcome>(std::in_place));

  thread_local BatchScratch scratch;
  BatchScratch& sc = scratch;
  sc.Begin(batch.size());
  const EcvProfile* base_profile = &snapshot.profile();
  const std::string& base_fp = snapshot.profile_fingerprint();
  const uint32_t mask = static_cast<uint32_t>(sc.table.size() - 1);
  const bool memo_on = cache_.capacity() > 0;
  const uint64_t snap_id = snapshot.unique_id();
  if (memo_on && sc.memo.empty()) {
    sc.memo.resize(BatchScratch::kMemoSlots);
  }
  bool any_miss = false;

  for (size_t i = 0; i < batch.size(); ++i) {
    const Query& query = batch[i];
    // Batch items sample through the same per-thread gate as single
    // queries, so a batch of N advances the countdown N times and its
    // sampled items land in the same histograms and journal. (Group-pass
    // enumeration below runs outside these per-item spans; the enclosing
    // BatchWorkTimer owns work crediting — see DESIGN.md.)
    QueryTimer timer(options_.obs_sample_interval, query.kind,
                     /*credit_work=*/false);
    if ((query.kind != QueryKind::kExpected &&
         query.kind != QueryKind::kDistribution) ||
        EffectiveMode(query) != DistMode::kEnumerate) {
      // Certified queries dedup inside the snapshot evaluator's analytic
      // cache; the service's fold dedup below is kEnumerate-only.
      results[i] = DispatchOn(snapshot, query);
      continue;
    }

    int32_t idx;
    if (query.profile.empty()) {
      uint64_t h = BatchHashBytes(0x9E3779B97F4A7C15ull,
                                  query.interface.data(),
                                  query.interface.size());
      for (const Value& arg : query.args) {
        h = BatchHashValue(h, arg, sc.va);
      }
      BatchMemoEntry* memo_slot = nullptr;
      if (memo_on) {
        BatchMemoEntry& m = sc.memo[h & (BatchScratch::kMemoSlots - 1)];
        if (m.snap == snap_id && m.svc == svc_id_ && m.hash == h &&
            MemoMatches(m, query, sc.va, sc.vb)) {
          QueryOutcome& outcome = *results[i];
          outcome.kind = query.kind;
          outcome.joules = m.fold->mean;
          if (query.kind == QueryKind::kDistribution) {
            outcome.distribution = m.fold->distribution;
          }
          continue;
        }
        memo_slot = &m;
      }
      uint32_t pos = static_cast<uint32_t>(h) & mask;
      for (;;) {
        BatchScratch::Slot& slot = sc.table[pos];
        if (slot.stamp != sc.stamp) {
          uint32_t fresh_idx;
          BatchDistinct& d = sc.Acquire(fresh_idx);
          d.query = &query;
          d.profile = base_profile;
          d.memo_slot = memo_slot;
          d.memo_hash = h;
          AppendCacheKeyPrefix(snapshot, query, d.key);
          d.key += base_fp;
          if (SharedFold hit = LookupFold(d.key)) {
            d.fold = std::move(hit);
            d.resolved = true;
            if (memo_slot != nullptr) {
              FillMemo(*memo_slot, h, svc_id_, snap_id, query, d.fold);
            }
          }
          slot.stamp = sc.stamp;
          slot.idx = fresh_idx;
          idx = static_cast<int32_t>(fresh_idx);
          break;
        }
        // Only base-profile distincts enter the table, so a content match
        // is a key match (same prefix, same base fingerprint).
        BatchDistinct& d = sc.distincts[slot.idx];
        if (SameQueryContent(*d.query, query, sc.va, sc.vb)) {
          idx = static_cast<int32_t>(slot.idx);
          break;
        }
        pos = (pos + 1) & mask;
      }
    } else {
      // Effective profiles, hoisted: one base-profile merge + one
      // fingerprint per *distinct* override in the batch, not per item.
      auto [it, fresh] =
          sc.override_index.try_emplace(query.profile.Fingerprint(), nullptr);
      if (fresh) {
        EffProfileEntry& eff = sc.eff_profiles.emplace_back();
        eff.merged = snapshot.profile();
        eff.merged.MergeFrom(query.profile);
        SvcCounters::Get().profile_fingerprints.Increment();
        eff.fingerprint = eff.merged.Fingerprint();
        it->second = &eff;
      }
      const EffProfileEntry* eff = it->second;
      thread_local std::string key_scratch;
      key_scratch.clear();
      AppendCacheKeyPrefix(snapshot, query, key_scratch);
      key_scratch += eff->fingerprint;
      auto [kit, knew] = sc.key_index.try_emplace(key_scratch, 0);
      if (knew) {
        uint32_t fresh_idx;
        BatchDistinct& d = sc.Acquire(fresh_idx);
        d.key = key_scratch;
        d.query = &query;
        d.profile = &eff->merged;
        if (SharedFold hit = LookupFold(d.key)) {
          d.fold = std::move(hit);
          d.resolved = true;
        }
        kit->second = fresh_idx;
      }
      idx = static_cast<int32_t>(kit->second);
    }

    const BatchDistinct& d = sc.distincts[static_cast<size_t>(idx)];
    if (d.resolved) {
      // In place: QueryOutcome is large enough that the construct-then-move
      // idiom dominates the hit path.
      QueryOutcome& outcome = *results[i];
      outcome.kind = query.kind;
      outcome.joules = d.fold->mean;
      if (query.kind == QueryKind::kDistribution) {
        outcome.distribution = d.fold->distribution;
      }
    } else {
      sc.item_distinct[i] = idx;
      any_miss = true;
    }
  }

  if (!any_miss) {
    return results;
  }

  // Pass 2: distinct cache misses, grouped by (interface, effective
  // profile) — pointer identity suffices, every override was interned
  // above — each group one SoA pass. The batch engine's answers (vector or
  // per-lane scalar fallback) are bit-identical to FoldCached's
  // enumerate+fold, so duplicates, cache hits, and single dispatch all
  // agree bit-for-bit. Errors are never cached, exactly like FoldCached.
  std::map<std::pair<std::string_view, const EcvProfile*>,
           std::vector<BatchDistinct*>>
      groups;
  for (size_t di = 0; di < sc.live; ++di) {
    BatchDistinct& d = sc.distincts[di];
    if (!d.resolved) {
      groups[{std::string_view(d.query->interface), d.profile}].push_back(&d);
    }
  }
  for (auto& [group_key, lanes] : groups) {
    BatchPlan plan(snapshot.bundle().evaluator, std::string(group_key.first));
    std::vector<const std::vector<Value>*> lane_args;
    lane_args.reserve(lanes.size());
    for (const BatchDistinct* d : lanes) {
      lane_args.push_back(&d->query->args);
    }
    std::vector<Result<BatchLaneFold>> folds =
        plan.EnumerateFold(lane_args, *group_key.second, options_.calibration);
    for (size_t l = 0; l < lanes.size(); ++l) {
      BatchDistinct* d = lanes[l];
      d->resolved = true;
      if (!folds[l].ok()) {
        d->error = folds[l].status();
        continue;
      }
      auto entry = std::make_shared<const ExactFold>(
          ExactFold{std::move(folds[l]->distribution), folds[l]->mean});
      d->fold = entry;
      StoreFold(d->key, std::move(entry));
      if (d->memo_slot != nullptr) {
        FillMemo(*d->memo_slot, d->memo_hash, svc_id_, snapshot.unique_id(),
                 *d->query, d->fold);
      }
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    const int32_t idx = sc.item_distinct[i];
    if (idx < 0) {
      continue;  // answered in pass 1
    }
    const BatchDistinct& d = sc.distincts[static_cast<size_t>(idx)];
    if (!d.error.ok()) {
      results[i] = d.error;
      continue;
    }
    QueryOutcome& outcome = *results[i];
    outcome.kind = batch[i].kind;
    outcome.joules = d.fold->mean;
    if (batch[i].kind == QueryKind::kDistribution) {
      outcome.distribution = d.fold->distribution;
    }
  }
  return results;
}

QueryService::CacheStats QueryService::TotalCacheStats() const {
  return cache_.TotalStats();
}

std::vector<QueryService::CacheStats> QueryService::PerShardCacheStats()
    const {
  std::vector<CacheStats> stats;
  stats.reserve(cache_.shard_count());
  for (size_t i = 0; i < cache_.shard_count(); ++i) {
    stats.push_back(cache_.StatsForShard(i));
  }
  return stats;
}

size_t QueryService::cache_shard_count() const { return cache_.shard_count(); }

}  // namespace eclarity
