// QueryService: a thread-safe, concurrent energy-query front end.
//
// The paper's resource managers consult energy interfaces continuously —
// an OS scheduler or datacenter manager issues thousands of "how much
// energy would this input cost?" queries per second, from many threads.
// This service makes that usage pattern first-class:
//
//   * Immutable snapshots, RCU-style. The checked program (with its
//     lowered fast-path form) and the base ECV profile live in an
//     atomically swappable std::shared_ptr<const Snapshot>. Readers
//     acquire a snapshot with one atomic load and keep evaluating against
//     it even while a writer publishes a new profile or program — the old
//     snapshot stays valid until its last reader drops it, so profile
//     updates never block queries.
//
//   * Sharded exact-fold cache. Exact enumeration results are folded to a
//     canonical (distribution, mean) pair at insert time and cached in a
//     ShardedLruMap keyed on (program generation, interface, argument
//     fingerprints, effective-profile fingerprint); concurrent queries on
//     different keys take different shard locks, and a hit answers an
//     Expected or Distribution query with no re-fold. Errors are never
//     cached.
//
//   * Snapshot-time bytecode specialization. Each publication specializes
//     the bundle's bytecode program against the snapshot's base profile
//     (Evaluator::PrepareSpecialized), so steady-state queries run baked
//     ECV resolution. Specialization compiles outside every lock — readers
//     on the old snapshot fall back to the generic program and never block.
//
//   * Deterministic concurrency. Expected / Distribution queries are exact
//     folds of the enumeration and therefore bit-reproducible regardless
//     of thread interleaving. Monte Carlo and Sample queries derive their
//     RNG stream from the query's seed alone (never from shared mutable
//     state), so a concurrent run is bit-identical to a single-threaded
//     replay of the same request log.
//
//   * Bounded Monte Carlo pool. MC requests run on a fixed-size worker
//     pool with a bounded queue (submitters block when it is full), so a
//     burst of heavy sampling queries cannot spawn unbounded threads.
//
// See DESIGN.md, "Concurrent query service".

#ifndef ECLARITY_SRC_SVC_QUERY_SERVICE_H_
#define ECLARITY_SRC_SVC_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/distribution.h"
#include "src/eval/ecv_profile.h"
#include "src/eval/interp.h"
#include "src/lang/ast.h"
#include "src/svc/sharded_cache.h"
#include "src/units/units.h"
#include "src/util/status.h"

namespace eclarity {

enum class QueryKind {
  kExpected,      // exact expectation (Joules)
  kDistribution,  // exact distribution over Joules
  kMonteCarlo,    // sampled mean on the worker pool (seeded by the query)
  kSample,        // one sampled outcome (seeded by the query)
};

struct Query {
  std::string interface;    // entry interface to evaluate
  std::vector<Value> args;  // call arguments
  // Per-query ECV overrides, merged over the snapshot's base profile
  // (query keys win). Leave empty to use the snapshot profile as-is.
  EcvProfile profile;
  QueryKind kind = QueryKind::kExpected;
  uint64_t seed = 0;     // RNG seed for kMonteCarlo / kSample
  size_t samples = 1024;  // sample count for kMonteCarlo
  // Distribution-evaluation mode for kExpected / kDistribution. Unset uses
  // the service-wide options.eval.dist_mode; an analytic mode routes the
  // query through the snapshot evaluator's certified engine (with its
  // memoized sub-distribution cache), kEnumerate through the service's
  // sharded enumeration cache.
  std::optional<DistMode> dist_mode;
};

// One query's answer. `joules` is filled for kExpected / kMonteCarlo (and
// for kDistribution, as the mean); `distribution` only for kDistribution;
// `sample` only for kSample.
struct QueryOutcome {
  QueryKind kind = QueryKind::kExpected;
  double joules = 0.0;
  std::optional<Distribution> distribution;
  std::optional<Value> sample;

  // Certified-evaluation metadata, meaningful only when `analytic` is true
  // (the query ran under an analytic dist_mode): |exact_mean - joules| <=
  // error_bound, and pruned_mass is the certified dropped probability mass.
  bool analytic = false;
  double error_bound = 0.0;
  double pruned_mass = 0.0;

  // Canonical byte encoding (bit-exact doubles); equal outcomes produce
  // equal fingerprints. The concurrency tests compare these. Certified
  // metadata is appended only when `analytic` is set, so fingerprints of
  // legacy (enumeration-mode) outcomes are unchanged.
  std::string Fingerprint() const;
};

// Namespace-scope (not nested) so `Options options = {}` default arguments
// work around GCC bug 88165; spelled QueryService::Options at use sites.
struct QueryServiceOptions {
  // Total enumeration-cache capacity in entries, split across shards.
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
  // Monte Carlo worker pool: thread count and queue bound (0 means
  // 4 * mc_pool_threads). Submitters block while the queue is full.
  size_t mc_pool_threads = 2;
  size_t mc_queue_limit = 0;
  // Evaluation budgets / engine. The per-evaluator enumeration cache and
  // MC worker spawning are disabled internally: the service's sharded
  // cache and bounded pool replace them. Setting eval.vm_profiler threads
  // the bytecode VM profiler through every snapshot evaluator, giving
  // per-interface hot-op attribution for service traffic.
  EvalOptions eval;
  // Calibration for abstract-energy returns (borrowed; may be null).
  const EnergyCalibration* calibration = nullptr;
  // Continuous observability (src/obs): every N-th query per thread is
  // timed into the per-kind latency histograms and journalled as a span
  // (with cache-lookup / snapshot-pin / eval / fold phase spans on the
  // sampled query). Unsampled queries pay one thread-local countdown.
  // 0 disables sampling. The default keeps the self-accounted overhead
  // (eclarity_obs_overhead_ratio) well under the 1% telemetry budget even
  // at cache-hit speeds (~10^7 queries/s); diagnostic tools can lower it.
  uint32_t obs_sample_interval = 256;
};

class QueryService {
 public:
  using Options = QueryServiceOptions;

  // Checks nothing beyond what evaluation will check: the program must be
  // closed (callers resolve imports first, e.g. via EnergyInterface::Link).
  static Result<std::unique_ptr<QueryService>> Create(
      Program program, Options options = {}, EcvProfile base_profile = {});

  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Queries (all thread-safe, any number of concurrent callers) --------

  Result<Energy> Expected(const Query& query) const;
  Result<Distribution> EvalDistribution(const Query& query) const;
  // Runs on the bounded worker pool; blocks until the result is ready.
  Result<Energy> MonteCarlo(const Query& query) const;
  Result<Value> Sample(const Query& query) const;

  // Dispatches on query.kind; the mixed-workload entry point.
  Result<QueryOutcome> Dispatch(const Query& query) const;

  // Evaluates a batch against ONE snapshot, amortising the snapshot
  // acquisition and deduplicating enumeration work: exact queries sharing
  // (interface, args, profile) are fingerprinted once and enumerated once.
  // Results are positionally aligned with `batch` and bit-identical to
  // dispatching each query alone.
  std::vector<Result<QueryOutcome>> EvaluateBatch(
      const std::vector<Query>& batch) const;

  // --- Snapshot publication (writers; never blocks readers) ---------------

  // Swaps the base ECV profile. In-flight queries finish on the snapshot
  // they acquired; the enumeration cache needs no flush because keys carry
  // the effective-profile fingerprint.
  void UpdateProfile(EcvProfile profile);

  // Swaps the whole program (re-lowered under a fresh generation, so stale
  // cache entries can never be returned for the new program).
  Status UpdateProgram(Program program);

  // --- Observability -------------------------------------------------------

  // An exact query's fully folded answer, shared via the cache: the
  // enumeration folded to its canonical distribution and mean once, at
  // insert time, so hits answer Expected / Distribution queries directly.
  struct ExactFold {
    Distribution distribution;
    double mean = 0.0;
  };
  using SharedFold = std::shared_ptr<const ExactFold>;

  using CacheStats = ShardedLruMap<std::string, SharedFold>::ShardStats;
  CacheStats TotalCacheStats() const;
  std::vector<CacheStats> PerShardCacheStats() const;
  size_t cache_shard_count() const;
  uint64_t snapshot_generation() const;

  // The snapshot type is opaque to callers; tests hold one to pin the old
  // world across a swap.
  class Snapshot;
  std::shared_ptr<const Snapshot> AcquireSnapshot() const;
  // Expected energy evaluated against a pinned snapshot (bypasses the
  // current publication, still uses the shared cache).
  Result<Energy> ExpectedOn(const Snapshot& snapshot,
                            const Query& query) const;

 private:
  class McPool;

  QueryService(std::shared_ptr<const Snapshot> initial, Options options);

  using SharedOutcomes = Evaluator::SharedOutcomes;

  // The calling thread's cached snapshot slot (revalidated against
  // publish_seq_). The returned reference is pinned by the thread-local
  // shared_ptr until this thread's next acquisition on any service.
  const std::shared_ptr<const Snapshot>& SnapshotSlot() const;
  // Borrowed snapshot for the synchronous query paths: no refcount traffic.
  // Valid until the calling thread's next acquisition — callers consume it
  // within the query and never stash it.
  const Snapshot& AcquireSnapshotRef() const { return *SnapshotSlot(); }

  // Cache-or-(enumerate+fold) against `snapshot`; `key_hint` (may be null)
  // carries a precomputed cache key from the batch path. The returned
  // pointer stays valid until the calling thread's next FoldCached call (a
  // thread-local MRU slot pins the entry); callers consume it immediately.
  Result<const ExactFold*> FoldCached(const Snapshot& snapshot,
                                      const Query& query,
                                      const std::string* key_hint) const;
  // Fold-cache primitives shared by FoldCached and the batch path. Both go
  // through the same thread-local MRU slots and count exactly one cache hit
  // or miss per LookupFold call; StoreFold publishes a freshly folded entry
  // (shard insert + thread-local slot fill, counting evictions).
  SharedFold LookupFold(const std::string& key) const;
  void StoreFold(const std::string& key, SharedFold entry) const;
  std::string CacheKey(const Snapshot& snapshot, const Query& query) const;
  void AppendCacheKey(const Snapshot& snapshot, const Query& query,
                      std::string& out) const;
  // The cache key minus the trailing effective-profile fingerprint. The
  // batch path appends a fingerprint hoisted once per distinct override
  // instead of re-merging and re-fingerprinting per item.
  void AppendCacheKeyPrefix(const Snapshot& snapshot, const Query& query,
                            std::string& out) const;
  // The query's dist_mode, falling back to the service-wide default.
  DistMode EffectiveMode(const Query& query) const;
  // Certified evaluation against `snapshot` under an analytic mode, through
  // the snapshot evaluator's memoized sub-distribution cache.
  Result<CertifiedDistribution> CertifiedOn(const Snapshot& snapshot,
                                            const Query& query,
                                            DistMode mode) const;
  Result<QueryOutcome> DispatchOn(const Snapshot& snapshot,
                                  const Query& query) const;
  Result<Energy> MonteCarloOn(const Snapshot& snapshot,
                              const Query& query) const;

  Options options_;
  // Distinguishes this service in thread-local caches; allocated from a
  // process-wide counter and never reused, so a service constructed at a
  // freed service's address cannot alias its stale thread-local state.
  const uint64_t svc_id_;
  // Published snapshot, guarded by snapshot_mu_. A plain mutex instead of
  // std::atomic<std::shared_ptr>: libstdc++'s lock-based _Sp_atomic unlocks
  // the reader side with memory_order_relaxed, so a reader's pointer read
  // and a writer's subsequent store have no happens-before edge — a data
  // race under the C++ memory model (ThreadSanitizer reports it). Readers
  // only take the mutex once per publication per thread: the hot path is
  // the publish_seq_-validated thread-local slot below.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  // Bumped after every snapshot publication. AcquireSnapshot's per-thread
  // cache revalidates against this with one relaxed-cost atomic load,
  // skipping the mutex entirely while no swap happened.
  std::atomic<uint64_t> publish_seq_;
  std::atomic<uint64_t> next_generation_;
  mutable ShardedLruMap<std::string, SharedFold> cache_;
  std::unique_ptr<McPool> mc_pool_;
};

}  // namespace eclarity

#endif  // ECLARITY_SRC_SVC_QUERY_SERVICE_H_
