// A thread-safe, sharded LRU map with striped locks.
//
// Generalises the single-threaded LruMap (src/util/lru.h) for the
// concurrent query service: the key space is split across N independent
// shards, each a mutex plus its own LruMap, so concurrent lookups on
// different shards never contend. Every shard keeps its own hit / miss /
// eviction counters (the paper's point that a cache's statistics *are*
// knowledge a resource manager feeds back as ECV probabilities), and the
// aggregate view preserves the invariant hits + misses == lookups.
//
// Capacity is distributed across shards as evenly as possible; the shard
// count is clamped so no shard ends up with zero capacity unless the whole
// cache has zero capacity (which disables storage, like LruMap).

#ifndef ECLARITY_SRC_SVC_SHARDED_CACHE_H_
#define ECLARITY_SRC_SVC_SHARDED_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/util/lru.h"

namespace eclarity {

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruMap {
 public:
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;

    uint64_t lookups() const { return hits + misses; }
  };

  // `shard_count` is a request: it is clamped to [1, total_capacity] (or 1
  // when the capacity is zero) so every shard can hold at least one entry.
  explicit ShardedLruMap(size_t total_capacity, size_t shard_count = 16) {
    if (shard_count == 0) {
      shard_count = 1;
    }
    if (total_capacity > 0 && shard_count > total_capacity) {
      shard_count = total_capacity;
    }
    if (total_capacity == 0) {
      shard_count = 1;
    }
    shards_.reserve(shard_count);
    const size_t base = total_capacity / shard_count;
    const size_t remainder = total_capacity % shard_count;
    for (size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(
          std::make_unique<Shard>(base + (i < remainder ? 1 : 0)));
    }
  }

  // Copy of the value on hit (entry promoted to most-recent), nullopt on a
  // miss. Returns by value so the caller never holds a pointer into a shard
  // another thread may mutate; V is typically a shared_ptr.
  std::optional<V> Get(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (V* hit = shard.map.Get(key)) {
      return *hit;
    }
    return std::nullopt;
  }

  // Inserts (or refreshes) an entry. Returns true when a resident entry was
  // evicted to make room.
  bool Put(K key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.Put(std::move(key), std::move(value));
  }

  // Lookup without promoting or touching the statistics.
  bool Contains(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.Contains(key);
  }

  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.Clear();
    }
  }

  size_t shard_count() const { return shards_.size(); }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

  size_t capacity() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->map.capacity();  // immutable after construction
    }
    return total;
  }

  ShardStats StatsForShard(size_t index) const {
    const Shard& shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mu);
    return ShardStats{shard.map.hits(), shard.map.misses(),
                      shard.map.evictions(), shard.map.size(),
                      shard.map.capacity()};
  }

  // Aggregate over all shards. Each shard is snapshotted under its own lock;
  // with concurrent traffic the aggregate is a consistent sum of per-shard
  // snapshots (hits + misses still equals the lookups those snapshots saw).
  ShardStats TotalStats() const {
    ShardStats total;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardStats s = StatsForShard(i);
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.size += s.size;
      total.capacity += s.capacity;
    }
    return total;
  }

  void ResetStats() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.ResetStats();
    }
  }

  // Exposed for tests: which shard a key routes to.
  size_t ShardIndexOf(const K& key) const { return ShardIndex(key); }

 private:
  struct Shard {
    explicit Shard(size_t cap) : map(cap) {}
    mutable std::mutex mu;
    LruMap<K, V, Hash> map;
  };

  size_t ShardIndex(const K& key) const {
    // Fibonacci spreading keeps clustered hash values (sequential integers,
    // common prefixes) from piling onto one shard.
    const uint64_t h =
        static_cast<uint64_t>(hash_(key)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>((h >> 32) % shards_.size());
  }

  Shard& ShardFor(const K& key) { return *shards_[ShardIndex(key)]; }
  const Shard& ShardFor(const K& key) const { return *shards_[ShardIndex(key)]; }

  Hash hash_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace eclarity

#endif  // ECLARITY_SRC_SVC_SHARDED_CACHE_H_
