#include "src/units/abstract_energy.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

namespace eclarity {
namespace {

constexpr double kCoefficientEpsilon = 1e-15;

}  // namespace

void EnergyCalibration::Bind(const std::string& unit, Energy per_unit) {
  bindings_[unit] = per_unit;
}

bool EnergyCalibration::Has(const std::string& unit) const {
  return bindings_.count(unit) > 0;
}

Result<Energy> EnergyCalibration::Get(const std::string& unit) const {
  const auto it = bindings_.find(unit);
  if (it == bindings_.end()) {
    return NotFoundError("no calibration for abstract unit '" + unit + "'");
  }
  return it->second;
}

std::vector<std::string> EnergyCalibration::Units() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, energy] : bindings_) {
    names.push_back(name);
  }
  return names;
}

std::string EnergyCalibration::Fingerprint() const {
  std::string fp;
  fp.reserve(bindings_.size() * 16);
  for (const auto& [name, energy] : bindings_) {  // std::map: sorted order
    fp += name;
    fp.push_back('=');
    const double joules = energy.joules();
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(joules));
    std::memcpy(&bits, &joules, sizeof(bits));
    fp.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
    fp.push_back(';');
  }
  return fp;
}

AbstractEnergy AbstractEnergy::FromConcrete(Energy e) {
  AbstractEnergy out;
  out.concrete_ = e;
  return out;
}

AbstractEnergy AbstractEnergy::Unit(const std::string& unit, double count) {
  AbstractEnergy out;
  out.terms_[unit] = count;
  out.Prune();
  return out;
}

double AbstractEnergy::Coefficient(const std::string& unit) const {
  const auto it = terms_.find(unit);
  return it == terms_.end() ? 0.0 : it->second;
}

std::vector<std::string> AbstractEnergy::Units() const {
  std::vector<std::string> names;
  names.reserve(terms_.size());
  for (const auto& [name, coeff] : terms_) {
    names.push_back(name);
  }
  return names;
}

AbstractEnergy AbstractEnergy::operator+(const AbstractEnergy& other) const {
  AbstractEnergy out = *this;
  out += other;
  return out;
}

AbstractEnergy AbstractEnergy::operator-(const AbstractEnergy& other) const {
  return *this + other * -1.0;
}

AbstractEnergy AbstractEnergy::operator*(double scale) const {
  AbstractEnergy out;
  out.concrete_ = concrete_ * scale;
  for (const auto& [name, coeff] : terms_) {
    out.terms_[name] = coeff * scale;
  }
  out.Prune();
  return out;
}

AbstractEnergy& AbstractEnergy::operator+=(const AbstractEnergy& other) {
  concrete_ += other.concrete_;
  for (const auto& [name, coeff] : other.terms_) {
    terms_[name] += coeff;
  }
  Prune();
  return *this;
}

bool AbstractEnergy::operator==(const AbstractEnergy& other) const {
  return concrete_ == other.concrete_ && terms_ == other.terms_;
}

Result<Energy> AbstractEnergy::Resolve(
    const EnergyCalibration& calibration) const {
  Energy total = concrete_;
  for (const auto& [name, coeff] : terms_) {
    ECLARITY_ASSIGN_OR_RETURN(Energy per_unit, calibration.Get(name));
    total += per_unit * coeff;
  }
  return total;
}

Result<double> AbstractEnergy::RatioTo(const AbstractEnergy& other) const {
  if (IsConcrete() && other.IsConcrete()) {
    if (other.concrete_ == Energy::Zero()) {
      return FailedPreconditionError("RatioTo: division by zero energy");
    }
    return concrete_ / other.concrete_;
  }
  if (terms_.size() == 1 && other.terms_.size() == 1 &&
      concrete_ == Energy::Zero() && other.concrete_ == Energy::Zero()) {
    const auto& [unit_a, coeff_a] = *terms_.begin();
    const auto& [unit_b, coeff_b] = *other.terms_.begin();
    if (unit_a != unit_b) {
      return FailedPreconditionError(
          "RatioTo: incomparable abstract units '" + unit_a + "' vs '" +
          unit_b + "'");
    }
    if (coeff_b == 0.0) {
      return FailedPreconditionError("RatioTo: division by zero energy");
    }
    return coeff_a / coeff_b;
  }
  return FailedPreconditionError(
      "RatioTo: quantities are not multiples of a single common unit");
}

std::string AbstractEnergy::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : terms_) {
    if (!first) {
      os << " + ";
    }
    os << coeff << " " << name;
    first = false;
  }
  if (concrete_ != Energy::Zero() || first) {
    if (!first) {
      os << " + ";
    }
    os << concrete_.ToString();
  }
  return os.str();
}

void AbstractEnergy::Prune() {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::fabs(it->second) < kCoefficientEpsilon) {
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
}

AbstractEnergy operator*(double scale, const AbstractEnergy& e) {
  return e * scale;
}

}  // namespace eclarity
