// Abstract energy units (paper §3).
//
// An energy interface may return energy "in abstract units, such as 'energy
// for a 2D convolution' or 'energy for a ReLU'". Abstract units support
// relative comparisons ("4 ReLUs' worth is twice 2 ReLUs' worth") without
// knowing how many Joules a ReLU costs, and convert to concrete Joules once a
// calibration table — typically produced by microbenchmarks on the target
// machine — binds each unit.
//
// AbstractEnergy is a sparse linear combination of named units plus an
// optional concrete Joule component, so mixed expressions like
// `3 * relu + Energy::Millijoules(2)` remain well-defined.

#ifndef ECLARITY_SRC_UNITS_ABSTRACT_ENERGY_H_
#define ECLARITY_SRC_UNITS_ABSTRACT_ENERGY_H_

#include <map>
#include <string>
#include <vector>

#include "src/units/units.h"
#include "src/util/status.h"

namespace eclarity {

// Binds abstract unit names to concrete energies, e.g. {"relu": 0.8 uJ}.
class EnergyCalibration {
 public:
  EnergyCalibration() = default;

  // Overwrites any previous binding for `unit`.
  void Bind(const std::string& unit, Energy per_unit);

  bool Has(const std::string& unit) const;
  Result<Energy> Get(const std::string& unit) const;

  // Names of all bound units, sorted.
  std::vector<std::string> Units() const;

  size_t size() const { return bindings_.size(); }

  // Deterministic key over all bindings (unit names + exact Joule bits),
  // for caches whose entries depend on the calibration.
  std::string Fingerprint() const;

 private:
  std::map<std::string, Energy> bindings_;
};

class AbstractEnergy {
 public:
  AbstractEnergy() = default;

  // A pure concrete amount (no abstract terms).
  static AbstractEnergy FromConcrete(Energy e);
  // `count` units of the named abstract unit.
  static AbstractEnergy Unit(const std::string& unit, double count = 1.0);

  // The concrete (Joule) component.
  Energy concrete() const { return concrete_; }
  // Coefficient of the named unit (0 when absent).
  double Coefficient(const std::string& unit) const;
  // All abstract unit names with nonzero coefficient, sorted.
  std::vector<std::string> Units() const;
  // True when there are no abstract terms (purely concrete, possibly zero).
  bool IsConcrete() const { return terms_.empty(); }

  AbstractEnergy operator+(const AbstractEnergy& other) const;
  AbstractEnergy operator-(const AbstractEnergy& other) const;
  AbstractEnergy operator*(double scale) const;
  AbstractEnergy& operator+=(const AbstractEnergy& other);

  bool operator==(const AbstractEnergy& other) const;

  // Resolves to concrete Joules under `calibration`. Fails with kNotFound
  // when a referenced unit is unbound.
  Result<Energy> Resolve(const EnergyCalibration& calibration) const;

  // If both quantities are multiples of the *same single* unit (or both
  // purely concrete), returns the dimensionless ratio this/other; otherwise
  // kFailedPrecondition. This is the paper's "relative comparison without
  // Joules" operation.
  Result<double> RatioTo(const AbstractEnergy& other) const;

  // e.g. "3 conv2d + 16 relu + 2.5 mJ".
  std::string ToString() const;

 private:
  void Prune();  // drops terms with ~0 coefficients

  Energy concrete_;
  std::map<std::string, double> terms_;
};

AbstractEnergy operator*(double scale, const AbstractEnergy& e);

}  // namespace eclarity

#endif  // ECLARITY_SRC_UNITS_ABSTRACT_ENERGY_H_
