#include "src/units/units.h"

#include <array>
#include <cstdio>

namespace eclarity {
namespace {

struct Scale {
  double factor;
  const char* suffix;
};

// Renders `value` (in base units) with the best-fitting SI prefix.
std::string RenderScaled(double value, const char* base_suffix) {
  static constexpr std::array<Scale, 7> kScales = {{
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "k"},
      {1.0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
  }};
  const double magnitude = std::fabs(value);
  const Scale* chosen = &kScales.back();
  for (const Scale& s : kScales) {
    if (magnitude >= s.factor) {
      chosen = &s;
      break;
    }
  }
  if (magnitude == 0.0) {
    chosen = &kScales[3];  // plain base unit for zero
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g %s%s", value / chosen->factor,
                chosen->suffix, base_suffix);
  return buf;
}

}  // namespace

Power Energy::operator/(Duration d) const {
  return Power::Watts(joules_ / d.seconds());
}

std::string Energy::ToString() const { return RenderScaled(joules_, "J"); }

std::string Duration::ToString() const { return RenderScaled(seconds_, "s"); }

std::string Power::ToString() const { return RenderScaled(watts_, "W"); }

std::ostream& operator<<(std::ostream& os, Energy e) {
  return os << e.ToString();
}
std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}
std::ostream& operator<<(std::ostream& os, Power p) {
  return os << p.ToString();
}

}  // namespace eclarity
