// Strongly typed physical quantities: Energy (Joules), Power (Watts), and
// Duration (seconds), with the dimensional algebra between them
// (Energy = Power * Duration, Power = Energy / Duration, ...).
//
// Keeping these as distinct types (rather than bare doubles) prevents the
// classic Joule-vs-Watt and milli-vs-base unit slips that energy-accounting
// code is prone to.

#ifndef ECLARITY_SRC_UNITS_UNITS_H_
#define ECLARITY_SRC_UNITS_UNITS_H_

#include <cmath>
#include <compare>
#include <ostream>
#include <string>

namespace eclarity {

class Power;
class Duration;

// An amount of energy. Internally stored in Joules.
class Energy {
 public:
  constexpr Energy() : joules_(0.0) {}

  static constexpr Energy Joules(double j) { return Energy(j); }
  static constexpr Energy Millijoules(double mj) { return Energy(mj * 1e-3); }
  static constexpr Energy Microjoules(double uj) { return Energy(uj * 1e-6); }
  static constexpr Energy Nanojoules(double nj) { return Energy(nj * 1e-9); }
  static constexpr Energy Picojoules(double pj) { return Energy(pj * 1e-12); }
  static constexpr Energy KilowattHours(double kwh) {
    return Energy(kwh * 3.6e6);
  }
  static constexpr Energy Zero() { return Energy(0.0); }

  constexpr double joules() const { return joules_; }
  constexpr double millijoules() const { return joules_ * 1e3; }
  constexpr double microjoules() const { return joules_ * 1e6; }
  constexpr double nanojoules() const { return joules_ * 1e9; }
  constexpr double picojoules() const { return joules_ * 1e12; }
  constexpr double kilowatt_hours() const { return joules_ / 3.6e6; }

  constexpr Energy operator+(Energy other) const {
    return Energy(joules_ + other.joules_);
  }
  constexpr Energy operator-(Energy other) const {
    return Energy(joules_ - other.joules_);
  }
  constexpr Energy operator*(double scale) const {
    return Energy(joules_ * scale);
  }
  constexpr Energy operator/(double scale) const {
    return Energy(joules_ / scale);
  }
  // Dimensionless ratio of two energies.
  constexpr double operator/(Energy other) const {
    return joules_ / other.joules_;
  }
  Energy& operator+=(Energy other) {
    joules_ += other.joules_;
    return *this;
  }
  Energy& operator-=(Energy other) {
    joules_ -= other.joules_;
    return *this;
  }
  Energy& operator*=(double scale) {
    joules_ *= scale;
    return *this;
  }
  constexpr Energy operator-() const { return Energy(-joules_); }

  constexpr auto operator<=>(const Energy&) const = default;

  // Energy / Duration -> Power (defined after Duration below).
  Power operator/(Duration d) const;

  // Human-friendly rendering with auto-scaled unit, e.g. "12.4 mJ".
  std::string ToString() const;

 private:
  explicit constexpr Energy(double joules) : joules_(joules) {}
  double joules_;
};

// A span of time. Internally stored in seconds.
class Duration {
 public:
  constexpr Duration() : seconds_(0.0) {}

  static constexpr Duration Seconds(double s) { return Duration(s); }
  static constexpr Duration Milliseconds(double ms) {
    return Duration(ms * 1e-3);
  }
  static constexpr Duration Microseconds(double us) {
    return Duration(us * 1e-6);
  }
  static constexpr Duration Nanoseconds(double ns) {
    return Duration(ns * 1e-9);
  }
  static constexpr Duration Minutes(double m) { return Duration(m * 60.0); }
  static constexpr Duration Hours(double h) { return Duration(h * 3600.0); }
  static constexpr Duration Zero() { return Duration(0.0); }

  constexpr double seconds() const { return seconds_; }
  constexpr double milliseconds() const { return seconds_ * 1e3; }
  constexpr double microseconds() const { return seconds_ * 1e6; }
  constexpr double nanoseconds() const { return seconds_ * 1e9; }
  constexpr double hours() const { return seconds_ / 3600.0; }

  constexpr Duration operator+(Duration other) const {
    return Duration(seconds_ + other.seconds_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(seconds_ - other.seconds_);
  }
  constexpr Duration operator*(double scale) const {
    return Duration(seconds_ * scale);
  }
  constexpr Duration operator/(double scale) const {
    return Duration(seconds_ / scale);
  }
  constexpr double operator/(Duration other) const {
    return seconds_ / other.seconds_;
  }
  Duration& operator+=(Duration other) {
    seconds_ += other.seconds_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    seconds_ -= other.seconds_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(double seconds) : seconds_(seconds) {}
  double seconds_;
};

// A rate of energy use. Internally stored in Watts.
class Power {
 public:
  constexpr Power() : watts_(0.0) {}

  static constexpr Power Watts(double w) { return Power(w); }
  static constexpr Power Milliwatts(double mw) { return Power(mw * 1e-3); }
  static constexpr Power Kilowatts(double kw) { return Power(kw * 1e3); }
  static constexpr Power Zero() { return Power(0.0); }

  constexpr double watts() const { return watts_; }
  constexpr double milliwatts() const { return watts_ * 1e3; }
  constexpr double kilowatts() const { return watts_ * 1e-3; }

  constexpr Power operator+(Power other) const {
    return Power(watts_ + other.watts_);
  }
  constexpr Power operator-(Power other) const {
    return Power(watts_ - other.watts_);
  }
  constexpr Power operator*(double scale) const {
    return Power(watts_ * scale);
  }
  constexpr Power operator/(double scale) const {
    return Power(watts_ / scale);
  }
  constexpr double operator/(Power other) const {
    return watts_ / other.watts_;
  }
  Power& operator+=(Power other) {
    watts_ += other.watts_;
    return *this;
  }

  constexpr auto operator<=>(const Power&) const = default;

  // Power * Duration -> Energy.
  constexpr Energy operator*(Duration d) const {
    return Energy::Joules(watts_ * d.seconds());
  }

  std::string ToString() const;

 private:
  explicit constexpr Power(double watts) : watts_(watts) {}
  double watts_;
};

constexpr Energy operator*(Duration d, Power p) {
  return Energy::Joules(p.watts() * d.seconds());
}
constexpr Energy operator*(double scale, Energy e) { return e * scale; }
constexpr Duration operator*(double scale, Duration d) { return d * scale; }
constexpr Power operator*(double scale, Power p) { return p * scale; }

std::ostream& operator<<(std::ostream& os, Energy e);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Power p);

}  // namespace eclarity

#endif  // ECLARITY_SRC_UNITS_UNITS_H_
