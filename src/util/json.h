// Minimal JSON string escaping shared by every exporter that renders
// user-controlled text (trace event names/args, journal payloads, metric
// help strings). JSON has exactly two mandatory escapes — '"' and '\\' —
// plus the control range; everything else passes through untouched so
// UTF-8 payloads survive round trips.

#ifndef ECLARITY_SRC_UTIL_JSON_H_
#define ECLARITY_SRC_UTIL_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace eclarity {

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_JSON_H_
