#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace eclarity {
namespace {

std::atomic<LogSeverity> g_threshold{LogSeverity::kWarning};

// Serialises record emission; also protects the sink (a std::function is
// not atomically swappable).
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink& Sink() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void SetLogThreshold(LogSeverity severity) { g_threshold.store(severity); }

LogSeverity GetLogThreshold() { return g_threshold.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sink() = std::move(sink);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ < g_threshold.load()) {
    return;
  }
  // Format the whole record first, then emit it in one write so concurrent
  // records never interleave mid-line.
  std::string record = "[";
  record += LogSeverityName(severity_);
  record += ' ';
  record += Basename(file_);
  record += ':';
  record += std::to_string(line_);
  record += "] ";
  record += stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sink()) {
    Sink()(severity_, record);
    return;
  }
  record += '\n';
  std::fwrite(record.data(), 1, record.size(), stderr);
}

}  // namespace eclarity
