#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace eclarity {
namespace {

std::atomic<LogSeverity> g_threshold{LogSeverity::kWarning};

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void SetLogThreshold(LogSeverity severity) { g_threshold.store(severity); }

LogSeverity GetLogThreshold() { return g_threshold.load(); }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ < g_threshold.load()) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogSeverityName(severity_),
               Basename(file_), line_, stream_.str().c_str());
}

}  // namespace eclarity
