// Minimal leveled logging for the eclarity libraries.
//
// Usage:
//   ECLARITY_LOG(Info) << "calibrated " << n << " coefficients";
//
// Logging defaults to Warning-and-above on stderr; tests and benches can
// raise or lower the threshold with SetLogThreshold(). Each record is
// formatted into one string and emitted with a single write under a lock,
// so records never interleave even when the Monte Carlo worker pool logs
// from several threads at once.

#ifndef ECLARITY_SRC_UTIL_LOGGING_H_
#define ECLARITY_SRC_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace eclarity {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogSeverityName(LogSeverity severity);

// Sets the global minimum severity that is actually emitted.
void SetLogThreshold(LogSeverity severity);
LogSeverity GetLogThreshold();

// Replaces the destination of log records. The sink receives each complete,
// formatted record (no trailing newline); it is invoked under the logging
// lock, so it needs no synchronisation of its own. Passing nullptr restores
// the default stderr sink. Tests use this to capture output.
using LogSink = std::function<void(LogSeverity, const std::string& record)>;
void SetLogSink(LogSink sink);

// One log statement. Accumulates into a stream, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define ECLARITY_LOG(severity)                                             \
  ::eclarity::LogMessage(::eclarity::LogSeverity::k##severity, __FILE__, \
                         __LINE__)

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_LOGGING_H_
