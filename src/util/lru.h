// A generic intrusive-list LRU map.
//
// The eviction idiom (recency list + index of list iterators) is the one the
// Fig. 1 web-service cache uses; this template generalises it so the same
// policy can back the evaluator's enumeration memo, the scheduler's
// candidate-energy memo, and the app-level request caches. Not thread-safe;
// callers that share an instance across threads must synchronise.

#ifndef ECLARITY_SRC_UTIL_LRU_H_
#define ECLARITY_SRC_UTIL_LRU_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <variant>

namespace eclarity {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity) {}

  // Pointer to the value on hit (entry promoted to most-recent), nullptr on
  // miss. The pointer is invalidated by the next Put().
  V* Get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    if (it->second != order_.begin()) {
      order_.splice(order_.begin(), order_, it->second);
    }
    return &it->second->second;
  }

  // Lookup without promoting or touching the hit/miss statistics.
  const V* Peek(const K& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  // Inserts (or refreshes) an entry, evicting the least-recent on overflow.
  // A capacity of zero disables storage entirely. Returns true when the
  // insertion displaced a resident entry (observability hooks count these).
  bool Put(K key, V value) {
    if (capacity_ == 0) {
      return false;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    index_[std::move(key)] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
      return true;
    }
    return false;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

// A key-presence view over LruMap: an LRU *set* with hit/miss statistics.
//
// This is what the Fig. 1 web service uses for both the node-local request
// cache and the remote (Redis-like) tier — the hit statistics a cache keeps
// are exactly the knowledge its resource manager contributes as ECV
// probabilities when composing energy interfaces (paper §3). It replaces
// the former src/apps/lru_cache.h copy of the same idea.
template <typename K, typename Hash = std::hash<K>>
class LruSet {
 public:
  explicit LruSet(size_t capacity) : map_(capacity) {}

  // True on hit (entry promoted to most-recent).
  bool Get(const K& key) { return map_.Get(key) != nullptr; }

  // Inserts (or refreshes) an entry, evicting the least-recent on overflow.
  void Put(K key) { map_.Put(std::move(key), std::monostate{}); }

  bool Contains(const K& key) const { return map_.Contains(key); }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return map_.capacity(); }

  uint64_t hits() const { return map_.hits(); }
  uint64_t misses() const { return map_.misses(); }
  uint64_t evictions() const { return map_.evictions(); }
  double HitRate() const { return map_.HitRate(); }
  void ResetStats() { map_.ResetStats(); }

 private:
  LruMap<K, std::monostate, Hash> map_;
};

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_LRU_H_
