#include "src/util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eclarity {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Normal() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth's algorithm.
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double sample = Normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<uint64_t>(sample + 0.5);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = UniformDouble();
  if (u < 1e-300) {
    u = 1e-300;
  }
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xda3e39cb94b95bdbULL); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double running = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    running += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = running;
  }
  for (double& c : cdf_) {
    c /= running;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace eclarity
