// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in eclarity (ECV sampling, workload generation,
// measurement noise) flows through Rng so that experiments are reproducible
// from a seed. The engine is xoshiro256++, seeded via SplitMix64.

#ifndef ECLARITY_SRC_UTIL_RNG_H_
#define ECLARITY_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eclarity {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (mean 0, stddev 1).
  double Normal();
  double Normal(double mean, double stddev);

  // Samples an index from an (unnormalised) weight vector. Weights must be
  // non-negative with positive sum; returns weights.size()-1 as a guard on
  // floating point slack.
  size_t Categorical(const std::vector<double>& weights);

  // Zipf-distributed rank in [0, n) with exponent s > 0. Implemented by
  // precomputing nothing: uses rejection-inversion would be heavy, so this is
  // simple inverse-CDF over cached harmonic weights per (n, s) call-site via
  // ZipfSampler below; this method is a convenience for one-off draws.
  // Prefer ZipfSampler for hot loops.
  size_t Zipf(size_t n, double s);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation for large means).
  uint64_t Poisson(double mean);

  // Exponential with the given rate (> 0).
  double Exponential(double rate);

  // Forks an independent stream (distinct sequence derived from this one).
  Rng Fork();

 private:
  uint64_t state_[4];
};

// Efficient repeated Zipf sampling over a fixed (n, s): O(log n) per draw via
// binary search on the cached CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_RNG_H_
