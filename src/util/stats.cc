#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eclarity {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) {
    sum_sq += (x - mean) * (x - mean);
  }
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::max_element(xs.begin(), xs.end());
}

double RelativeError(double predicted, double actual) {
  if (actual == 0.0) {
    return std::abs(predicted);
  }
  return std::abs(predicted - actual) / std::abs(actual);
}

ErrorSummary SummarizeErrors(const std::vector<double>& errors) {
  ErrorSummary summary;
  summary.count = errors.size();
  if (errors.empty()) {
    return summary;
  }
  summary.average = Mean(errors);
  summary.max = Max(errors);
  summary.p50 = Percentile(errors, 50.0);
  summary.p95 = Percentile(errors, 95.0);
  return summary;
}

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return InvalidArgumentError("SolveLinearSystem: matrix must be square");
  }
  if (b.size() != n) {
    return InvalidArgumentError("SolveLinearSystem: rhs size mismatch");
  }
  // Augmented working copy.
  Matrix work(n, n + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      work.At(r, c) = a.At(r, c);
    }
    work.At(r, n) = b[r];
  }

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::abs(work.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(work.At(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return FailedPreconditionError("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = col; c <= n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
      }
    }
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = work.At(r, col) / work.At(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (size_t c = col; c <= n; ++c) {
        work.At(r, c) -= factor * work.At(col, c);
      }
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = work.At(ri, n);
    for (size_t c = ri + 1; c < n; ++c) {
      acc -= work.At(ri, c) * x[c];
    }
    x[ri] = acc / work.At(ri, ri);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    return InvalidArgumentError("LeastSquares: rhs size mismatch");
  }
  if (m < n) {
    return InvalidArgumentError("LeastSquares: underdetermined system");
  }
  // Normal equations: (A^T A) x = A^T b.
  Matrix ata(n, n);
  std::vector<double> atb(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < m; ++r) {
        acc += a.At(r, i) * a.At(r, j);
      }
      ata.At(i, j) = acc;
    }
    double acc = 0.0;
    for (size_t r = 0; r < m; ++r) {
      acc += a.At(r, i) * b[r];
    }
    atb[i] = acc;
  }
  return SolveLinearSystem(ata, atb);
}

Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& b, int max_iters,
    double tolerance) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    return InvalidArgumentError("NonNegativeLeastSquares: rhs size mismatch");
  }
  if (n == 0 || m == 0) {
    return InvalidArgumentError("NonNegativeLeastSquares: empty system");
  }

  // Precompute Gram matrix and A^T b once.
  Matrix gram(n, n);
  std::vector<double> atb(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < m; ++r) {
        acc += a.At(r, i) * a.At(r, j);
      }
      gram.At(i, j) = acc;
    }
    double acc = 0.0;
    for (size_t r = 0; r < m; ++r) {
      acc += a.At(r, i) * b[r];
    }
    atb[i] = acc;
  }

  std::vector<double> x(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double gii = gram.At(i, i);
      if (gii <= 0.0) {
        continue;  // column is all zeros; coefficient stays 0
      }
      double gradient = atb[i];
      for (size_t j = 0; j < n; ++j) {
        gradient -= gram.At(i, j) * x[j];
      }
      const double updated = std::max(0.0, x[i] + gradient / gii);
      max_delta = std::max(max_delta, std::abs(updated - x[i]));
      x[i] = updated;
    }
    if (max_delta < tolerance) {
      break;
    }
  }
  return x;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace eclarity
