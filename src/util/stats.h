// Statistics and small linear-algebra helpers.
//
// Used by the calibration workflow (least-squares fit of per-metric energy
// coefficients), by the benches (error summaries), and by the empirical
// interface extractor.

#ifndef ECLARITY_SRC_UTIL_STATS_H_
#define ECLARITY_SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

#include "src/util/status.h"

namespace eclarity {

// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& xs);

// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 samples.
double Variance(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
// Returns 0 for an empty vector.
double Percentile(std::vector<double> xs, double p);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// Relative error |predicted - actual| / |actual|. Returns |predicted| when
// actual == 0 (so that 0-vs-0 is 0 and nonzero-vs-0 is large).
double RelativeError(double predicted, double actual);

// Summary of a sample of relative errors, as reported in the paper's Table 1.
struct ErrorSummary {
  double average = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  size_t count = 0;
};

ErrorSummary SummarizeErrors(const std::vector<double>& errors);

// Dense row-major matrix, just big enough for calibration problems.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Solves the square system a * x = b by Gaussian elimination with partial
// pivoting. Fails with kInvalidArgument on shape mismatch and
// kFailedPrecondition when the matrix is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

// Ordinary least squares: finds x minimising ||a*x - b||^2 via the normal
// equations (a^T a) x = a^T b. Requires a.rows() >= a.cols().
Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b);

// Non-negative least squares via projected coordinate descent. Calibrated
// energy coefficients must be physically non-negative; plain OLS can go
// negative when metrics are correlated.
Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& b, int max_iters = 2000,
    double tolerance = 1e-12);

// Pearson correlation of two equal-length vectors; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_STATS_H_
