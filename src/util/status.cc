#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace eclarity {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace eclarity
