// Lightweight error handling primitives used across the eclarity libraries.
//
// The toolkit does not use exceptions for recoverable errors (parse errors,
// evaluation errors, lookup failures). Instead, fallible operations return
// Status (for void-like operations) or Result<T> (for value-producing ones),
// in the spirit of absl::Status / absl::StatusOr.

#ifndef ECLARITY_SRC_UTIL_STATUS_H_
#define ECLARITY_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace eclarity {

// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup failed (interface, resource, ECV, ...)
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// operation not valid in current state
  kOutOfRange,        // index / numeric range violation
  kUnimplemented,     // feature intentionally not supported
  kResourceExhausted, // step / recursion / iteration limits hit
  kInternal,          // invariant violation (bug in eclarity itself)
  kUnavailable,       // transient telemetry/resource failure; retry may help
};

// Human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);

// Prints the status and aborts. Result<T>::value() calls this on error-state
// access so the failure is a loud, deterministic abort on every build type
// (the std::get path would be UB in NDEBUG builds).
[[noreturn]] void DieOnBadResultAccess(const Status& status);

// A value of type T or an error Status. Accessing value() on an error, or
// status() semantics, mirror absl::StatusOr.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return MakeFoo();` and `return SomeError();`
  // both work from functions returning Result<T>.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  // Constructs the success value in place — no intermediate T moves. Used on
  // hot paths where T is large (e.g. batch answers built directly inside a
  // pre-reserved results vector).
  template <typename... Args>
  explicit Result(std::in_place_t, Args&&... args)
      : data_(std::in_place_index<0>, std::forward<Args>(args)...) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    if (!ok()) {
      DieOnBadResultAccess(std::get<Status>(data_));
    }
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) {
      DieOnBadResultAccess(std::get<Status>(data_));
    }
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) {
      DieOnBadResultAccess(std::get<Status>(data_));
    }
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

// Propagates errors out of the enclosing function:
//   ECLARITY_RETURN_IF_ERROR(DoThing());
#define ECLARITY_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::eclarity::Status eclarity_status_ = (expr);  \
    if (!eclarity_status_.ok()) {                  \
      return eclarity_status_;                     \
    }                                              \
  } while (false)

// Unwraps a Result<T> into a local or propagates the error:
//   ECLARITY_ASSIGN_OR_RETURN(auto v, ComputeThing());
#define ECLARITY_ASSIGN_OR_RETURN(decl, expr)                        \
  ECLARITY_ASSIGN_OR_RETURN_IMPL_(                                   \
      ECLARITY_STATUS_CONCAT_(result_, __LINE__), decl, expr)
#define ECLARITY_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  decl = std::move(tmp).value()
#define ECLARITY_STATUS_CONCAT_(a, b) ECLARITY_STATUS_CONCAT_IMPL_(a, b)
#define ECLARITY_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace eclarity

#endif  // ECLARITY_SRC_UTIL_STATUS_H_
