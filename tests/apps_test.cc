// Tests for the application substrates: the LRU request-cache view, the
// Fig. 1 web service
// (system + interface agreement), and the fuzzing campaign model.

#include <gtest/gtest.h>

#include "src/apps/fuzzing.h"
#include "src/apps/webservice.h"
#include "src/hw/vendor.h"
#include "src/iface/energy_interface.h"
#include "src/util/lru.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace eclarity {
namespace {

// --- LruSet (the former apps/lru_cache.h, now a util/lru.h view) ------------

TEST(LruSetTest, BasicHitMiss) {
  LruSet<uint64_t> cache(2);
  EXPECT_FALSE(cache.Get(1));
  cache.Put(1);
  EXPECT_TRUE(cache.Get(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(LruSetTest, EvictsLeastRecentlyUsed) {
  LruSet<uint64_t> cache(2);
  cache.Put(1);
  cache.Put(2);
  EXPECT_TRUE(cache.Get(1));  // 1 is now most recent
  cache.Put(3);               // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruSetTest, PutRefreshesExisting) {
  LruSet<uint64_t> cache(2);
  cache.Put(1);
  cache.Put(2);
  cache.Put(1);  // refresh, no eviction
  cache.Put(3);  // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruSetTest, ZeroCapacityNeverStores) {
  LruSet<uint64_t> cache(0);
  cache.Put(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

// Regression for the former src/apps/lru_cache.h: drive the set view and a
// bare LruMap<uint64_t, std::monostate> (what LruCache wrapped) with the
// same mixed operation sequence and require identical observable behavior —
// hits, residency, sizes, and statistics.
TEST(LruSetTest, AgreesWithMonostateLruMap) {
  LruSet<uint64_t> set(3);
  LruMap<uint64_t, std::monostate> map(3);
  Rng rng(0xec1a517ull);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.NextUint64() % 8;
    switch (rng.NextUint64() % 3) {
      case 0: {
        EXPECT_EQ(set.Get(key), map.Get(key) != nullptr);
        break;
      }
      case 1:
        set.Put(key);
        map.Put(key, std::monostate{});
        break;
      default:
        EXPECT_EQ(set.Contains(key), map.Contains(key));
        break;
    }
  }
  EXPECT_EQ(set.size(), map.size());
  EXPECT_EQ(set.hits(), map.hits());
  EXPECT_EQ(set.misses(), map.misses());
  EXPECT_EQ(set.evictions(), map.evictions());
  EXPECT_DOUBLE_EQ(set.HitRate(), map.HitRate());
  for (uint64_t key = 0; key < 8; ++key) {
    EXPECT_EQ(set.Contains(key), map.Contains(key)) << key;
  }
}

// --- WebService ----------------------------------------------------------------

TEST(WebServiceTest, ServesAndCounts) {
  WebServiceConfig config;
  config.corpus_images = 2000;
  WebService service(config, 42);
  auto result = service.Run(3000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counters.requests, 3000u);
  EXPECT_EQ(result->counters.local_hits + result->counters.remote_hits +
                result->counters.cnn_misses,
            3000u);
  // A Zipf stream over 2k images with a 500-entry local cache hits often.
  EXPECT_GT(result->counters.RequestHitRate(), 0.3);
  EXPECT_GT(result->measured_energy.joules(), 0.0);
  EXPECT_EQ(result->per_request_joules.size(), 3000u);
  // Energy decomposes into the four shares.
  const double parts = result->node_energy.joules() +
                       result->remote_energy.joules() +
                       result->nic_energy.joules() +
                       result->gpu_energy.joules();
  EXPECT_NEAR(parts, result->measured_energy.joules(),
              1e-9 * parts + 1e-12);
}

TEST(WebServiceTest, ZeroFractionDeterministicAndBounded) {
  WebServiceConfig config;
  WebService service(config, 1);
  for (uint64_t id = 0; id < 100; ++id) {
    const double z = service.ZeroFraction(id);
    EXPECT_GE(z, config.zero_fraction_lo);
    EXPECT_LE(z, config.zero_fraction_hi);
    EXPECT_DOUBLE_EQ(z, service.ZeroFraction(id));
  }
}

TEST(WebServiceTest, LargerCacheRaisesHitRate) {
  WebServiceConfig small;
  small.local_cache_entries = 50;
  WebServiceConfig large = small;
  large.local_cache_entries = 3000;
  WebService service_small(small, 9);
  WebService service_large(large, 9);
  auto a = service_small.Run(5000);
  auto b = service_large.Run(5000);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->counters.local_hits, a->counters.local_hits);
  // More local hits -> less energy per request.
  EXPECT_LT(b->measured_energy.joules(), a->measured_energy.joules());
}

// The Fig. 1 interface, instantiated with the observed hit rates, predicts
// the measured mean per-request energy.
TEST(WebServiceTest, InterfacePredictsMeasuredMean) {
  WebServiceConfig config;
  WebService service(config, 77);
  auto run = service.Run(8000);
  ASSERT_TRUE(run.ok());

  auto program = WebServiceEnergyInterface(config, ServerCpuProfile(1),
                                           CnnModel(CnnConfig::Fig1()));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto open_iface = EnergyInterface::FromProgram(
      std::move(*program), "E_ml_webservice_handle",
      {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(open_iface.ok()) << open_iface.status().ToString();
  auto hw = GpuVendorInterface(Rtx4090LikeProfile());
  ASSERT_TRUE(hw.ok());
  auto iface = open_iface->Link(*hw);
  ASSERT_TRUE(iface.ok());

  // The cache manager's knowledge: observed hit rates as the ECV profile.
  EcvProfile profile;
  profile.SetBernoulli("request_hit", run->counters.RequestHitRate());
  profile.SetBernoulli("local_cache_hit", run->counters.LocalHitRate());

  const double mean_zeros =
      config.image_elements *
      (config.zero_fraction_lo + config.zero_fraction_hi) / 2.0;
  auto predicted = iface->Expected(
      {Value::Number(config.image_elements), Value::Number(mean_zeros)},
      profile);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();

  const double measured_mean = Mean(run->per_request_joules);
  EXPECT_NEAR(predicted->joules() / measured_mean, 1.0, 0.10)
      << "predicted " << predicted->joules() << " measured " << measured_mean;
}

// --- Fuzzing campaign -------------------------------------------------------------

TEST(CampaignTest, CoverageSaturates) {
  FuzzCampaignConfig config;
  Rng rng(3);
  const CampaignResult r = RunCampaign(config, 16, 0.99, rng);
  EXPECT_TRUE(r.met_target);
  EXPECT_GT(r.coverage_reached, 0.99);
  EXPECT_LE(r.coverage_reached, 1.0);
}

TEST(CampaignTest, TooFewMachinesMissDeadline) {
  FuzzCampaignConfig config;
  config.deadline = Duration::Hours(1.0);
  Rng rng(3);
  const CampaignResult r = RunCampaign(config, 1, 0.99, rng);
  EXPECT_FALSE(r.met_target);
  EXPECT_NEAR(r.duration.seconds(), config.deadline.seconds(),
              Duration::Minutes(10.0).seconds() + 1.0);
}

TEST(CampaignTest, InterfaceMatchesSimulatedCampaign) {
  FuzzCampaignConfig config;
  auto program = CampaignEnergyInterface(config);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Evaluator evaluator(*program);
  Rng rng(13);
  for (int machines : {8, 16, 32}) {
    // Average several simulated campaigns (the sim has discovery noise).
    double total = 0.0;
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      total += RunCampaign(config, machines, 0.95, rng).energy.joules();
    }
    const double simulated = total / reps;
    auto predicted = evaluator.ExpectedEnergy(
        "E_fuzz_campaign",
        {Value::Number(static_cast<double>(machines)), Value::Number(0.95)},
        {});
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
    // The sim advances in 10-minute steps, so allow coarse agreement.
    EXPECT_NEAR(predicted->joules() / simulated, 1.0, 0.15)
        << "machines=" << machines;
  }
}

}  // namespace
}  // namespace eclarity
