// Differential & property harness for the SoA batch evaluator
// (src/eval/batch.*) and its service/scheduler routing:
//
//   * BATCH BIT-IDENTITY — BatchPlan::EnumerateFold's per-lane folds
//     (distribution atoms, probability bits, mean) must equal the scalar
//     enumeration fold bit for bit, per lane, against every engine (tree
//     walk, fast path, bytecode), at widths {1, 2, 7, 64, 513}, across the
//     shared parity corpus and randomized deep-ECV programs — including
//     error codes and messages when individual lanes fail or exceed
//     budgets.
//   * SERVICE PROPERTIES — EvaluateBatch(batch) equals per-item Dispatch
//     under lane permutation; mixed-profile batches split by effective
//     fingerprint (computed once per distinct override, asserted via
//     MetricsRegistry); divergent-lane scalar fallback is bit-identical;
//     zero-length and single-lane batches are legal.
//   * MONTE CARLO — single-worker MonteCarloMean (the batch-lane path) is
//     bit-identical to the multi-worker scalar chunk loop for one seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/eval/batch.h"
#include "src/eval/interp.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/svc/query_service.h"
#include "src/util/rng.h"
#include "tests/deep_program_gen.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::unique_ptr<QueryService> MustCreate(const std::string& source,
                                         QueryService::Options options = {},
                                         EcvProfile profile = {}) {
  auto service = QueryService::Create(MustParse(source), options,
                                      std::move(profile));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

Counter& BatchLanesCounter() {
  return MetricsRegistry::Global().GetCounter("eclarity_eval_batch_lanes_total");
}
Counter& BatchPassesCounter() {
  return MetricsRegistry::Global().GetCounter(
      "eclarity_eval_batch_passes_total");
}
Counter& BatchFallbacksCounter() {
  return MetricsRegistry::Global().GetCounter(
      "eclarity_eval_batch_scalar_fallbacks_total");
}
Counter& ProfileFingerprintsCounter() {
  return MetricsRegistry::Global().GetCounter(
      "eclarity_svc_profile_fingerprints_total");
}

constexpr int kWidths[] = {1, 2, 7, 64, 513};

// Per-lane argument vectors: the corpus args with arg[0] shifted by the
// lane index (wrapped small so loop bounds and path counts stay bounded),
// or identical lanes when the entry takes no arguments.
std::vector<std::vector<Value>> LaneArgs(const std::vector<double>& base,
                                         int width) {
  std::vector<std::vector<Value>> lanes;
  lanes.reserve(static_cast<size_t>(width));
  for (int l = 0; l < width; ++l) {
    std::vector<Value> args;
    args.reserve(base.size());
    for (size_t j = 0; j < base.size(); ++j) {
      const double shift = j == 0 ? static_cast<double>(l % 5) : 0.0;
      args.push_back(Value::Number(base[j] + shift));
    }
    lanes.push_back(std::move(args));
  }
  return lanes;
}

std::vector<const std::vector<Value>*> LanePtrs(
    const std::vector<std::vector<Value>>& lanes) {
  std::vector<const std::vector<Value>*> ptrs;
  ptrs.reserve(lanes.size());
  for (const auto& lane : lanes) {
    ptrs.push_back(&lane);
  }
  return ptrs;
}

// Asserts one batch lane against the scalar reference fold for the same
// evaluator: same error (code and message) or bit-identical distribution
// atoms and mean.
void ExpectLaneMatchesScalar(const Evaluator& evaluator,
                             const std::string& entry,
                             const std::vector<Value>& args,
                             const EcvProfile& profile,
                             const Result<BatchLaneFold>& lane,
                             const std::string& label) {
  const Result<Distribution> want_dist =
      evaluator.EvalDistribution(entry, args, profile);
  const Result<Energy> want_mean =
      evaluator.ExpectedEnergy(entry, args, profile);
  if (!want_dist.ok()) {
    ASSERT_FALSE(lane.ok()) << label << ": batch lane unexpectedly succeeded";
    EXPECT_EQ(lane.status().code(), want_dist.status().code()) << label;
    EXPECT_EQ(lane.status().message(), want_dist.status().message()) << label;
    return;
  }
  ASSERT_TRUE(lane.ok()) << label << ": " << lane.status().ToString();
  EXPECT_EQ(Bits(lane->mean), Bits(want_mean->joules())) << label;
  const auto& got_atoms = lane->distribution.atoms();
  const auto& want_atoms = want_dist->atoms();
  ASSERT_EQ(got_atoms.size(), want_atoms.size()) << label;
  for (size_t a = 0; a < got_atoms.size(); ++a) {
    EXPECT_EQ(Bits(got_atoms[a].value), Bits(want_atoms[a].value))
        << label << " atom " << a;
    EXPECT_EQ(Bits(got_atoms[a].probability), Bits(want_atoms[a].probability))
        << label << " atom " << a;
  }
}

struct EngineCase {
  const char* name;
  EvalEngine engine;
};
constexpr EngineCase kEngines[] = {
    {"tree_walk", EvalEngine::kTreeWalk},
    {"fast_path", EvalEngine::kFastPath},
    {"bytecode", EvalEngine::kBytecode},
};

// --- Differential harness: parity corpus ---------------------------------

TEST(BatchDifferentialTest, ParityCorpusAllEnginesAllWidths) {
  for (const parity::ParityCase& c : parity::kParityCorpus) {
    const Program program = MustParse(c.source);
    for (const EngineCase& engine : kEngines) {
      EvalOptions options;
      options.engine = engine.engine;
      const Evaluator evaluator(program, options);
      const BatchPlan plan(evaluator, c.entry);
      for (const int width : kWidths) {
        const auto lanes = LaneArgs(c.args, width);
        const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
        ASSERT_EQ(folds.size(), lanes.size());
        for (size_t l = 0; l < lanes.size(); ++l) {
          ExpectLaneMatchesScalar(
              evaluator, c.entry, lanes[l], {}, folds[l],
              std::string(c.name) + "/" + engine.name + "/w" +
                  std::to_string(width) + "/lane" + std::to_string(l));
        }
      }
    }
  }
}

TEST(BatchDifferentialTest, ParityCorpusWithProfileOverride) {
  // A profile override shared by all lanes: the vector engine must resolve
  // draws from the override (shared uniform columns), bit-identically.
  const Program program = MustParse(parity::kFig1Source);
  EcvProfile profile;
  profile.SetBernoulli("request_hit", 0.9);
  profile.SetBernoulli("local_cache_hit", 0.25);
  const Evaluator evaluator(program, {});
  const BatchPlan plan(evaluator, "E_ml_webservice_handle");
  const auto lanes = LaneArgs({50176.0, 10000.0}, 64);
  const auto folds = plan.EnumerateFold(LanePtrs(lanes), profile, nullptr);
  ASSERT_EQ(folds.size(), lanes.size());
  for (size_t l = 0; l < lanes.size(); ++l) {
    ExpectLaneMatchesScalar(evaluator, "E_ml_webservice_handle", lanes[l],
                            profile, folds[l],
                            "fig1_profile/lane" + std::to_string(l));
  }
}

TEST(BatchDifferentialTest, ErrorCorpusPerLaneParity) {
  for (const parity::ParityCase& c : parity::kErrorCorpus) {
    const Program program = MustParse(c.source);
    const Evaluator evaluator(program, {});
    const BatchPlan plan(evaluator, c.entry);
    const auto lanes = LaneArgs(c.args, 7);
    const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
    ASSERT_EQ(folds.size(), lanes.size());
    for (size_t l = 0; l < lanes.size(); ++l) {
      ExpectLaneMatchesScalar(evaluator, c.entry, lanes[l], {}, folds[l],
                              std::string(c.name) + "/lane" +
                                  std::to_string(l));
    }
  }
}

TEST(BatchDifferentialTest, PerLaneBudgetErrors) {
  // Lanes with n in {2..10} under max_paths = 64: lanes with 2^n <= 64
  // succeed, the rest fail with the enumeration budget error. The per-lane
  // loop bound diverges, so the whole tile must retreat to the scalar
  // engine — which reports each lane's own success or budget error.
  constexpr char kSource[] = R"(
interface f(n) {
  let mut acc = 0J;
  for i in 0..n {
    ecv b ~ bernoulli(0.5);
    if (b) { acc = acc + 2mJ; } else { acc = acc + 1mJ; }
  }
  return acc;
}
)";
  const Program program = MustParse(kSource);
  EvalOptions options;
  options.max_paths = 64;
  options.enum_cache_capacity = 0;
  const Evaluator evaluator(program, options);
  const BatchPlan plan(evaluator, "f");
  std::vector<std::vector<Value>> lanes;
  for (int n = 2; n <= 10; ++n) {
    lanes.push_back({Value::Number(static_cast<double>(n))});
  }
  const uint64_t fallbacks_before = BatchFallbacksCounter().value();
  const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
  ASSERT_EQ(folds.size(), lanes.size());
  EXPECT_EQ(BatchFallbacksCounter().value() - fallbacks_before, lanes.size());
  for (size_t l = 0; l < lanes.size(); ++l) {
    const int n = 2 + static_cast<int>(l);
    if (n <= 6) {  // 2^6 == 64 paths fits exactly
      EXPECT_TRUE(folds[l].ok()) << "n=" << n;
    } else {
      ASSERT_FALSE(folds[l].ok()) << "n=" << n;
      EXPECT_EQ(folds[l].status().code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(folds[l].status().message(),
                "ECV assignment enumeration exceeded max_paths");
    }
    ExpectLaneMatchesScalar(evaluator, "f", lanes[l], {}, folds[l],
                            "budget/lane" + std::to_string(l));
  }
}

TEST(BatchDifferentialTest, UniformLaneBatchVectorizes) {
  // Identical-argument lanes over Fig. 1 (all branching on shared draws)
  // must complete as vector passes, not scalar fallbacks.
  const Program program = MustParse(parity::kFig1Source);
  const Evaluator evaluator(program, {});
  const BatchPlan plan(evaluator, "E_ml_webservice_handle");
  std::vector<std::vector<Value>> lanes(
      64, {Value::Number(50176.0), Value::Number(10000.0)});
  const uint64_t lanes_before = BatchLanesCounter().value();
  const uint64_t passes_before = BatchPassesCounter().value();
  const uint64_t fallbacks_before = BatchFallbacksCounter().value();
  const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
  ASSERT_EQ(folds.size(), lanes.size());
  for (const auto& fold : folds) {
    ASSERT_TRUE(fold.ok()) << fold.status().ToString();
  }
  EXPECT_EQ(BatchLanesCounter().value() - lanes_before, 64u);
  EXPECT_EQ(BatchPassesCounter().value() - passes_before, 1u);
  EXPECT_EQ(BatchFallbacksCounter().value() - fallbacks_before, 0u);
}

// --- Differential harness: randomized deep-ECV programs ------------------

TEST(BatchDifferentialTest, RandomDeepPrograms) {
  Rng rng(0xBA7C4E5Eu);
  for (const int depth : {6, 7, 8}) {
    for (const bool friendly : {true, false}) {
      const std::string source = deepgen::DeepProgram(rng, depth, friendly);
      const Program program = MustParse(source);
      for (const EngineCase& engine : kEngines) {
        EvalOptions options;
        options.engine = engine.engine;
        const Evaluator evaluator(program, options);
        const BatchPlan plan(evaluator, "deep");
        for (const int width : {1, 2, 7, 64}) {
          const auto lanes = LaneArgs({3.0}, width);
          const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
          ASSERT_EQ(folds.size(), lanes.size());
          for (size_t l = 0; l < lanes.size(); ++l) {
            ExpectLaneMatchesScalar(
                evaluator, "deep", lanes[l], {}, folds[l],
                "deep_d" + std::to_string(depth) +
                    (friendly ? "_friendly/" : "_unfriendly/") + engine.name +
                    "/w" + std::to_string(width) + "/lane" +
                    std::to_string(l));
          }
        }
      }
    }
  }
}

TEST(BatchDifferentialTest, RandomDeepProgramWidth513) {
  Rng rng(0x513BA7C4u);
  const std::string source =
      deepgen::DeepProgram(rng, 6, /*friendly=*/true, /*binary_only=*/true);
  const Program program = MustParse(source);
  const Evaluator evaluator(program, {});
  const BatchPlan plan(evaluator, "deep");
  const auto lanes = LaneArgs({2.0}, 513);
  const auto folds = plan.EnumerateFold(LanePtrs(lanes), {}, nullptr);
  ASSERT_EQ(folds.size(), lanes.size());
  for (size_t l = 0; l < lanes.size(); ++l) {
    ExpectLaneMatchesScalar(evaluator, "deep", lanes[l], {}, folds[l],
                            "deep513/lane" + std::to_string(l));
  }
}

// --- Service-level properties --------------------------------------------

std::vector<Query> MixedBatch(size_t n) {
  std::vector<Query> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query query;
    query.interface = "E_ml_webservice_handle";
    const double image = 1024.0 + static_cast<double>(i % 8) * 64.0;
    query.args = {Value::Number(image), Value::Number(image / 4.0)};
    query.kind =
        i % 3 == 0 ? QueryKind::kDistribution : QueryKind::kExpected;
    batch.push_back(std::move(query));
  }
  return batch;
}

TEST(BatchPropertyTest, BatchEqualsSinglesUnderLanePermutation) {
  auto service = MustCreate(parity::kFig1Source);
  auto singles = MustCreate(parity::kFig1Source);
  std::vector<Query> batch = MixedBatch(37);
  // A fixed permutation: results must follow their lanes positionally.
  std::vector<size_t> perm(batch.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  Rng rng(99);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformInt(0, static_cast<int64_t>(i) - 1)]);
  }
  std::vector<Query> permuted;
  permuted.reserve(batch.size());
  for (const size_t p : perm) {
    permuted.push_back(batch[p]);
  }
  const auto results = service->EvaluateBatch(permuted);
  ASSERT_EQ(results.size(), permuted.size());
  for (size_t j = 0; j < permuted.size(); ++j) {
    const auto single = singles->Dispatch(batch[perm[j]]);
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(results[j].ok()) << results[j].status().ToString();
    EXPECT_EQ(results[j]->Fingerprint(), single->Fingerprint())
        << "lane " << j;
  }
}

TEST(BatchPropertyTest, MixedProfileBatchSplitsByFingerprintGroup) {
  auto service = MustCreate(parity::kFig1Source);
  auto singles = MustCreate(parity::kFig1Source);
  EcvProfile hot;
  hot.SetBernoulli("request_hit", 0.9);
  EcvProfile cold;
  cold.SetBernoulli("request_hit", 0.1);
  std::vector<Query> batch;
  for (size_t i = 0; i < 24; ++i) {
    Query query;
    query.interface = "E_ml_webservice_handle";
    query.args = {Value::Number(1024.0 + static_cast<double>(i % 4) * 64.0),
                  Value::Number(256.0)};
    if (i % 3 == 1) {
      query.profile = hot;
    } else if (i % 3 == 2) {
      query.profile = cold;
    }
    batch.push_back(std::move(query));
  }
  const uint64_t fp_before = ProfileFingerprintsCounter().value();
  const auto results = service->EvaluateBatch(batch);
  // The hoisted grouping merges + fingerprints once per distinct override
  // (hot, cold), not once per override-carrying item.
  EXPECT_EQ(ProfileFingerprintsCounter().value() - fp_before, 2u);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto single = singles->Dispatch(batch[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i]->Fingerprint(), single->Fingerprint())
        << "item " << i;
  }
}

TEST(BatchPropertyTest, FingerprintHoistingRegression) {
  // The pre-SoA EvaluateBatch re-merged and re-fingerprinted the effective
  // profile for every item. One batch of 16 identical overrides must cost
  // exactly one merge+fingerprint; 16 single dispatches cost 16.
  auto service = MustCreate(parity::kFig1Source);
  EcvProfile hot;
  hot.SetBernoulli("request_hit", 0.9);
  Query query;
  query.interface = "E_ml_webservice_handle";
  query.args = {Value::Number(1024.0), Value::Number(256.0)};
  query.profile = hot;
  const std::vector<Query> batch(16, query);

  const uint64_t batch_before = ProfileFingerprintsCounter().value();
  const auto results = service->EvaluateBatch(batch);
  const uint64_t batch_delta =
      ProfileFingerprintsCounter().value() - batch_before;
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(batch_delta, 1u);

  const uint64_t single_before = ProfileFingerprintsCounter().value();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(service->Dispatch(query).ok());
  }
  EXPECT_EQ(ProfileFingerprintsCounter().value() - single_before, 16u);
}

TEST(BatchPropertyTest, DivergentLanesFallBackBitIdentically) {
  // Per-lane arguments steer control flow differently (arg-dependent
  // branch), so the vector pass must abort and the per-lane scalar rerun
  // must produce the bits single dispatch produces.
  constexpr char kSource[] = R"(
interface f(n) {
  ecv retry ~ bernoulli(0.25);
  if (n < 3) {
    return retry ? 3mJ : 1mJ;
  }
  return (retry ? 2 : 1) * n * 1mJ;
}
)";
  auto service = MustCreate(kSource);
  auto singles = MustCreate(kSource);
  std::vector<Query> batch;
  for (size_t i = 0; i < 8; ++i) {
    Query query;
    query.interface = "f";
    query.args = {Value::Number(static_cast<double>(i))};
    batch.push_back(std::move(query));
  }
  const uint64_t fallbacks_before = BatchFallbacksCounter().value();
  const auto results = service->EvaluateBatch(batch);
  // All 8 distinct lanes retreat to the scalar engine, and are counted.
  EXPECT_EQ(BatchFallbacksCounter().value() - fallbacks_before, 8u);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto single = singles->Dispatch(batch[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i]->Fingerprint(), single->Fingerprint())
        << "item " << i;
  }
}

TEST(BatchPropertyTest, ZeroLengthAndSingleLaneBatchesAreLegal) {
  auto service = MustCreate(parity::kFig1Source);
  EXPECT_TRUE(service->EvaluateBatch({}).empty());

  Query query;
  query.interface = "E_ml_webservice_handle";
  query.args = {Value::Number(1024.0), Value::Number(256.0)};
  const auto batch = service->EvaluateBatch({query});
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_TRUE(batch[0].ok());
  const auto single = service->Dispatch(query);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(batch[0]->Fingerprint(), single->Fingerprint());

  // BatchPlan itself must accept zero lanes.
  const Program program = MustParse(parity::kFig1Source);
  const Evaluator evaluator(program, {});
  const BatchPlan plan(evaluator, "E_ml_webservice_handle");
  EXPECT_TRUE(plan.EnumerateFold({}, {}, nullptr).empty());
}

TEST(BatchPropertyTest, BatchErrorLanesMatchSingleDispatch) {
  // A batch mixing healthy lanes with failing lanes (unknown interface,
  // over-budget lanes) must report per-lane statuses identical to singles.
  constexpr char kSource[] = R"(
interface f(n) {
  let mut acc = 0J;
  for i in 0..n {
    ecv b ~ bernoulli(0.5);
    if (b) { acc = acc + 1mJ; }
  }
  return acc;
}
)";
  QueryService::Options options;
  options.eval.max_paths = 64;
  auto service = MustCreate(kSource, options);
  auto singles = MustCreate(kSource, options);
  std::vector<Query> batch;
  for (const double n : {2.0, 8.0, 4.0, 9.0}) {  // 2^8, 2^9 exceed 64 paths
    Query query;
    query.interface = "f";
    query.args = {Value::Number(n)};
    batch.push_back(std::move(query));
  }
  Query missing;
  missing.interface = "nope";
  batch.push_back(missing);
  const auto results = service->EvaluateBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto single = singles->Dispatch(batch[i]);
    ASSERT_EQ(results[i].ok(), single.ok()) << "item " << i;
    if (!single.ok()) {
      EXPECT_EQ(results[i].status().code(), single.status().code())
          << "item " << i;
      EXPECT_EQ(results[i].status().message(), single.status().message())
          << "item " << i;
    } else {
      EXPECT_EQ(results[i]->Fingerprint(), single->Fingerprint())
          << "item " << i;
    }
  }
}

// --- Monte Carlo routing --------------------------------------------------

TEST(BatchMonteCarloTest, SingleWorkerBatchPathMatchesThreadedScalar) {
  // Value-form draws (no per-lane control flow) keep the vector sampler
  // engaged; the single-worker batch path must reproduce the threaded
  // scalar chunk loop bit for bit — same seed, same chunk layout, same
  // fixed-order reduction.
  constexpr char kSource[] = R"(
interface g(n) {
  ecv tier ~ categorical(0: 0.5, 1: 0.3, 2: 0.2);
  ecv extra ~ uniform_int(0, 3);
  return (n + tier * 2 + extra) * 1mJ;
}
)";
  const Program program = MustParse(kSource);
  EvalOptions single_opts;
  single_opts.mc_workers = 1;
  EvalOptions threaded_opts;
  threaded_opts.mc_workers = 4;
  const Evaluator batched(program, single_opts);
  const Evaluator threaded(program, threaded_opts);
  const std::vector<Value> args = {Value::Number(5.0)};
  for (const size_t samples : {1u, 7u, 256u, 1000u, 4096u}) {
    Rng rng_a(0xC0FFEEu);
    Rng rng_b(0xC0FFEEu);
    const auto a = batched.MonteCarloMean("g", args, {}, rng_a, samples);
    const auto b = threaded.MonteCarloMean("g", args, {}, rng_b, samples);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(Bits(a->joules()), Bits(b->joules())) << samples << " samples";
  }
}

TEST(BatchMonteCarloTest, DivergentSamplingFallsBackBitIdentically) {
  // Per-lane bernoulli branching diverges immediately: the vector sampler
  // aborts without consuming the chunk streams and the scalar loop runs —
  // results must still match the threaded reference exactly.
  const Program program = MustParse(parity::kFig1Source);
  EvalOptions single_opts;
  single_opts.mc_workers = 1;
  EvalOptions threaded_opts;
  threaded_opts.mc_workers = 4;
  const Evaluator batched(program, single_opts);
  const Evaluator threaded(program, threaded_opts);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  Rng rng_a(0xF16F16u);
  Rng rng_b(0xF16F16u);
  const auto a =
      batched.MonteCarloMean("E_ml_webservice_handle", args, {}, rng_a, 1000);
  const auto b =
      threaded.MonteCarloMean("E_ml_webservice_handle", args, {}, rng_b, 1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Bits(a->joules()), Bits(b->joules()));
}

TEST(BatchMonteCarloTest, ErrorParity) {
  const Program program = MustParse("interface f(x) { return x + 1J; }");
  EvalOptions single_opts;
  single_opts.mc_workers = 1;
  const Evaluator batched(program, single_opts);
  Rng rng(7);
  const auto result =
      batched.MonteCarloMean("f", {Value::Number(1.0)}, {}, rng, 64);
  ASSERT_FALSE(result.ok());
  const Evaluator reference(program, {});
  Rng rng2(7);
  const auto want =
      reference.MonteCarloMean("f", {Value::Number(1.0)}, {}, rng2, 64);
  ASSERT_FALSE(want.ok());
  EXPECT_EQ(result.status().code(), want.status().code());
  EXPECT_EQ(result.status().message(), want.status().message());
}

}  // namespace
}  // namespace eclarity
