// Edge tests for the register bytecode VM (src/eval/bytecode.h) that the
// engine-parity harnesses cannot see from the outside: constant-pool
// deduplication, superinstruction fusion parity, register-frame reuse
// across nested calls, and profile-swap respecialization rekeying the
// query-service cache. Broad value/trace/error parity with the tree walk
// lives in tests/differential_test.cc and tests/eval_edge_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/eval/bytecode.h"
#include "src/eval/ecv_profile.h"
#include "src/eval/interp.h"
#include "src/eval/lower.h"
#include "src/eval/vm_profile.h"
#include "src/lang/parser.h"
#include "src/svc/query_service.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const Value& v) {
  std::string out;
  v.AppendFingerprint(out);
  return out;
}

std::shared_ptr<const BytecodeProgram> MustCompile(
    const LoweredProgram& lowered,
    const BytecodeProgram::CompileOptions& options = {}) {
  auto bc = BytecodeProgram::Compile(lowered, options);
  EXPECT_TRUE(bc.ok()) << bc.status().ToString();
  return std::move(bc).value();
}

// One enumerated path, captured bit-exactly.
struct PathOutcome {
  std::string value_fp;
  uint64_t probability_bits = 0;
  std::vector<std::pair<std::string, Value>> assignments;
};

// Enumerates the full ECV tree through an existing interpreter, mirroring
// the driving loop in Evaluator::EnumerateUncached. Takes the vm and its
// chooser by reference so a test can re-run the same (reused) frame.
Result<std::vector<PathOutcome>> EnumerateVm(
    BytecodeInterpreter& vm, eval_internal::EnumeratingChooser& chooser,
    const std::string& entry, const std::vector<Value>& args) {
  std::vector<PathOutcome> outcomes;
  for (;;) {
    vm.Reset();
    vm.set_path_index(outcomes.size());
    ECLARITY_ASSIGN_OR_RETURN(Value value, vm.CallByName(entry, args));
    PathOutcome o;
    o.value_fp = Fingerprint(value);
    o.probability_bits = Bits(chooser.probability());
    o.assignments = chooser.assignments();
    outcomes.push_back(std::move(o));
    if (!chooser.Advance()) {
      break;
    }
  }
  return outcomes;
}

void ExpectSameOutcomes(const std::vector<PathOutcome>& a,
                        const std::vector<PathOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("path " + std::to_string(i));
    EXPECT_EQ(a[i].value_fp, b[i].value_fp);
    EXPECT_EQ(a[i].probability_bits, b[i].probability_bits);
    ASSERT_EQ(a[i].assignments.size(), b[i].assignments.size());
    for (size_t j = 0; j < a[i].assignments.size(); ++j) {
      EXPECT_EQ(a[i].assignments[j].first, b[i].assignments[j].first);
      EXPECT_EQ(Fingerprint(a[i].assignments[j].second),
                Fingerprint(b[i].assignments[j].second));
    }
  }
}

TEST(BytecodeCompilerTest, ConstantPoolDeduplicatesRepeatedLiterals) {
  // The same 2mJ literal in five argument positions, plus one distinct
  // literal. None of the uses is constant-foldable (each multiplies the
  // runtime argument), so the compiler sees six kConst sites.
  const Program program = MustParse(R"(
interface f(x) {
  return x * 2mJ + x * 2mJ + x * 2mJ + x * 2mJ + x * 2mJ + x * 5mJ;
}
)");
  const Program single = MustParse(R"(
interface f(x) {
  return x * 2mJ + x * 5mJ;
}
)");
  const size_t support = EvalOptions().max_ecv_support;
  const LoweredProgram lowered = LoweredProgram::Lower(program, support);
  const LoweredProgram lowered_single =
      LoweredProgram::Lower(single, support);
  const auto bc = MustCompile(lowered);
  const auto bc_single = MustCompile(lowered_single);
  // Five uses of the same value share one pool entry: both programs pool
  // exactly the same set of distinct constants.
  EXPECT_EQ(bc->constant_pool_size(), bc_single->constant_pool_size());
  EXPECT_GE(bc->instruction_count(), bc_single->instruction_count());
}

TEST(BytecodeCompilerTest, SuperinstructionsAreBitIdenticalToUnfused) {
  // Fig. 1 exercises both superinstruction shapes: the CNN interface is a
  // fused sum-of-terms chain (kFoldChain) and both bernoulli draws guard
  // an immediate if (kEcvDrawBranch).
  const Program program = MustParse(parity::kFig1Source);
  const EvalOptions options;
  const LoweredProgram lowered =
      LoweredProgram::Lower(program, options.max_ecv_support);
  BytecodeProgram::CompileOptions unfused_options;
  unfused_options.enable_superinstructions = false;
  const auto fused = MustCompile(lowered);
  const auto unfused = MustCompile(lowered, unfused_options);
  EXPECT_GT(fused->superinstruction_count(), 0u);
  EXPECT_EQ(unfused->superinstruction_count(), 0u);
  EXPECT_GT(unfused->instruction_count(), fused->instruction_count());

  const std::vector<Value> args = {Value::Number(64), Value::Number(16)};
  const EcvProfile profile;
  eval_internal::EnumeratingChooser fused_chooser;
  eval_internal::EnumeratingChooser unfused_chooser;
  BytecodeInterpreter fused_vm(*fused, options, profile, fused_chooser);
  BytecodeInterpreter unfused_vm(*unfused, options, profile,
                                 unfused_chooser);
  auto fused_out =
      EnumerateVm(fused_vm, fused_chooser, "E_ml_webservice_handle", args);
  auto unfused_out = EnumerateVm(unfused_vm, unfused_chooser,
                                 "E_ml_webservice_handle", args);
  ASSERT_TRUE(fused_out.ok()) << fused_out.status().ToString();
  ASSERT_TRUE(unfused_out.ok()) << unfused_out.status().ToString();
  ASSERT_EQ(fused_out->size(), 3u);  // hit/local-hit, hit/local-miss, miss
  ExpectSameOutcomes(*fused_out, *unfused_out);
}

TEST(BytecodeInterpreterTest, FrameReuseAcrossNestedCalls) {
  // Three-deep call chain with a draw at every level, so enumeration
  // re-enters the nested frames on every path. One interpreter runs the
  // whole tree twice over the same register storage; both sweeps must be
  // bit-identical to each other and to the tree walk.
  const Program program = MustParse(R"(
interface outer(x) {
  ecv a ~ bernoulli(0.5);
  return middle(x) + (a ? 1mJ : 2mJ);
}
interface middle(x) {
  ecv b ~ bernoulli(0.25);
  return inner(x) * (b ? 2 : 3);
}
interface inner(x) {
  ecv c ~ uniform_int(0, 2);
  return x * 1mJ + c * 10uJ;
}
)");
  const EvalOptions options;
  const LoweredProgram lowered =
      LoweredProgram::Lower(program, options.max_ecv_support);
  const auto bc = MustCompile(lowered);
  const std::vector<Value> args = {Value::Number(3)};
  const EcvProfile profile;
  eval_internal::EnumeratingChooser chooser;
  BytecodeInterpreter vm(*bc, options, profile, chooser);
  auto first = EnumerateVm(vm, chooser, "outer", args);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), 12u);  // 2 * 2 * 3 assignments
  // Second sweep on the same interpreter: Reset() retains the register
  // and frame storage, so any stale-state leak between runs shows up as
  // a bit difference here.
  chooser.Reset();
  auto second = EnumerateVm(vm, chooser, "outer", args);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectSameOutcomes(*first, *second);

  EvalOptions tree_options;
  tree_options.engine = EvalEngine::kTreeWalk;
  Evaluator tree(program, tree_options);
  auto reference = tree.Enumerate("outer", args, profile);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->size(), first->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    SCOPED_TRACE("path " + std::to_string(i));
    EXPECT_EQ(Fingerprint((*reference)[i].value), (*first)[i].value_fp);
    EXPECT_EQ(Bits((*reference)[i].probability),
              (*first)[i].probability_bits);
  }
}

TEST(BytecodeSpecializationTest, PrepareSpecializedSwapsFingerprint) {
  const Program program = MustParse(parity::kFig1Source);
  EvalOptions options;
  options.engine = EvalEngine::kBytecode;
  Evaluator evaluator(program, options);
  EcvProfile p0;
  p0.SetBernoulli("request_hit", 0.2);
  EcvProfile p1;
  p1.SetBernoulli("request_hit", 0.9);
  evaluator.PrepareSpecialized(p0);
  const auto bc0 = evaluator.specialized_bytecode();
  ASSERT_NE(bc0, nullptr);
  EXPECT_TRUE(bc0->specialized());
  EXPECT_EQ(bc0->specialization_fingerprint(), p0.Fingerprint());
  // Re-specializing swaps in a fresh program keyed to the new profile;
  // the old one stays valid for readers that still hold it.
  evaluator.PrepareSpecialized(p1);
  const auto bc1 = evaluator.specialized_bytecode();
  ASSERT_NE(bc1, nullptr);
  EXPECT_NE(bc1, bc0);
  EXPECT_EQ(bc1->specialization_fingerprint(), p1.Fingerprint());
  EXPECT_EQ(bc0->specialization_fingerprint(), p0.Fingerprint());
}

TEST(BytecodeSpecializationTest, ProfileSwapRespecializesAndRekeysCache) {
  QueryService::Options options;
  options.eval.engine = EvalEngine::kBytecode;
  EcvProfile p0;
  p0.SetBernoulli("hit", 0.25);
  EcvProfile p1;
  p1.SetBernoulli("hit", 0.75);
  auto service = QueryService::Create(MustParse(R"(
interface f(x) {
  ecv hit ~ bernoulli(0.5);
  if (hit) {
    return 1mJ * x;
  } else {
    return 3mJ * x;
  }
}
)"),
                                      options, p0);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  QueryService& svc = **service;
  Query query;
  query.interface = "f";
  query.args = {Value::Number(2)};

  auto first = svc.Expected(query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(svc.TotalCacheStats().misses, 1u);
  // A repeat under the same profile is a cache answer, not a re-fold.
  auto repeat = svc.Expected(query);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(Bits(repeat->joules()), Bits(first->joules()));
  EXPECT_EQ(svc.TotalCacheStats().misses, 1u);

  // Swapping the base profile re-specializes the snapshot and rekeys the
  // cache: the same query must miss again and fold a different answer.
  svc.UpdateProfile(p1);
  auto swapped = svc.Expected(query);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(svc.TotalCacheStats().misses, 2u);
  EXPECT_NE(Bits(swapped->joules()), Bits(first->joules()));
  // 0.25 * 2mJ + 0.75 * 6mJ vs 0.75 * 2mJ + 0.25 * 6mJ.
  EXPECT_DOUBLE_EQ(first->millijoules(), 5.0);
  EXPECT_DOUBLE_EQ(swapped->millijoules(), 3.0);

  // Swapping back re-uses the original generation+fingerprint key: no new
  // fold, and the answer is bit-identical to the first.
  svc.UpdateProfile(p0);
  auto back = svc.Expected(query);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(svc.TotalCacheStats().misses, 2u);
  EXPECT_EQ(Bits(back->joules()), Bits(first->joules()));
}

// --- VM profiler -----------------------------------------------------------

// Inline-arithmetic interface whose left spine of additions compiles to a
// kFoldChain superinstruction — the hottest opcode by construction, since
// one fold-chain dispatch does the work of several binary ops.
constexpr char kFoldChainSource[] = R"(
const n_embedding = 256;
interface E_cnn_forward(image_size, n_zeros) {
  return 8 * (image_size - n_zeros) * 20nJ
       + 8 * n_embedding * 0.1nJ
       + 16 * n_embedding * 1.5nJ;
}
)";

TEST(VmProfilerTest, IntervalOneCountsEveryDispatch) {
  const Program program = MustParse(kFoldChainSource);
  EvalOptions options;
  options.engine = EvalEngine::kBytecode;
  options.enum_cache_capacity = 0;
  VmProfiler profiler(/*sample_interval=*/1);
  options.vm_profiler = &profiler;
  Evaluator evaluator(program, options);

  const std::vector<Value> args = {Value::Number(1024.0), Value::Number(64.0)};
  constexpr int kRepeats = 50;
  for (int i = 0; i < kRepeats; ++i) {
    auto dist = evaluator.EvalDistribution("E_cnn_forward", args, {});
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  }

  const VmProfiler::Snapshot snap = profiler.TakeSnapshot();
  ASSERT_GT(snap.dispatches, 0u);
  uint64_t hit_sum = 0;
  for (const VmProfiler::OpStat& op : snap.ops) {
    hit_sum += op.hits;
  }
  // Hit counters are exact regardless of the sampling interval.
  EXPECT_EQ(hit_sum, snap.dispatches);
  // At interval 1 every instruction is timed, except returning ones (they
  // leave the dispatch loop before the post-dispatch timing hook).
  EXPECT_GT(snap.samples, 0u);
  EXPECT_LT(snap.samples, snap.dispatches);
  EXPECT_GE(snap.samples, snap.dispatches / 2);
  // The run count is stable across calls: dispatches divide evenly.
  EXPECT_EQ(snap.dispatches % kRepeats, 0u);
}

TEST(VmProfilerTest, ProfiledRunIsBitIdenticalToUnprofiled) {
  const Program program = MustParse(parity::kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};

  EvalOptions plain;
  plain.engine = EvalEngine::kBytecode;
  plain.enum_cache_capacity = 0;
  Evaluator unprofiled(program, plain);
  auto reference = unprofiled.EvalDistribution("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  VmProfiler profiler(/*sample_interval=*/2);
  EvalOptions profiled = plain;
  profiled.vm_profiler = &profiler;
  Evaluator instrumented(program, profiled);
  auto observed = instrumented.EvalDistribution("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();

  EXPECT_EQ(Bits(observed->Mean()), Bits(reference->Mean()));
  ASSERT_EQ(observed->atoms().size(), reference->atoms().size());
  for (size_t i = 0; i < reference->atoms().size(); ++i) {
    EXPECT_EQ(Bits(observed->atoms()[i].value), Bits(reference->atoms()[i].value));
    EXPECT_EQ(Bits(observed->atoms()[i].probability),
              Bits(reference->atoms()[i].probability));
  }
  EXPECT_GT(profiler.TakeSnapshot().dispatches, 0u);
}

TEST(VmProfilerTest, FoldChainIsHottestOpOnBenchShape) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "sanitizer instrumentation distorts per-op timings";
#endif
  const Program program = MustParse(kFoldChainSource);
  EvalOptions options;
  options.engine = EvalEngine::kBytecode;
  options.enum_cache_capacity = 0;
  VmProfiler profiler(/*sample_interval=*/4);
  options.vm_profiler = &profiler;
  Evaluator evaluator(program, options);

  const std::vector<Value> args = {Value::Number(1024.0), Value::Number(64.0)};
  for (int i = 0; i < 3000; ++i) {
    auto dist = evaluator.EvalDistribution("E_cnn_forward", args, {});
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  }

  const VmProfiler::Snapshot snap = profiler.TakeSnapshot();
  ASSERT_FALSE(snap.ops.empty());
  // The random-phase systematic sampler must reach every site, not alias
  // onto one pc (runs here are much shorter than the sampling period).
  size_t sampled_sites = 0;
  for (const VmProfiler::SiteStat& site : snap.sites) {
    if (site.samples > 0) {
      ++sampled_sites;
    }
  }
  EXPECT_GE(sampled_sites, 4u);
  EXPECT_EQ(snap.HottestOp(), "kFoldChain");
}

TEST(VmProfilerTest, QueryServiceAttributesCostPerInterface) {
  QueryService::Options options;
  options.eval.engine = EvalEngine::kBytecode;
  options.cache_capacity = 2;  // tiny: most queries re-fold and re-eval
  VmProfiler profiler(/*sample_interval=*/2);
  options.eval.vm_profiler = &profiler;
  auto service =
      QueryService::Create(MustParse(parity::kFig1Source), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  for (int i = 0; i < 256; ++i) {
    Query query;
    query.interface = "E_ml_webservice_handle";
    query.args = {Value::Number(1000.0 + i), Value::Number(100.0)};
    query.kind = QueryKind::kExpected;
    auto outcome = (*service)->Dispatch(query);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  const VmProfiler::Snapshot snap = profiler.TakeSnapshot();
  ASSERT_GT(snap.dispatches, 0u);
  ASSERT_FALSE(snap.ifaces.empty());
  // Every sampled site resolves to a real interface of the program.
  for (const VmProfiler::IfaceStat& iface : snap.ifaces) {
    EXPECT_TRUE(iface.iface == "E_ml_webservice_handle" ||
                iface.iface == "E_cache_lookup" ||
                iface.iface == "E_cnn_forward")
        << iface.iface;
  }
  // The formatted report carries the per-interface table.
  const std::string report = FormatVmProfile(snap);
  EXPECT_NE(report.find("E_"), std::string::npos);
}

}  // namespace
}  // namespace eclarity
