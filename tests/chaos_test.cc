// Chaos harness tests: the measurement → monitoring → scheduling pipeline
// under deterministic fault plans. The load-bearing properties:
//
//   * determinism — the same plan yields bit-identical reports twice;
//   * zero-cost disarm — a zero-fault plan is bit-identical to the
//     un-instrumented pipeline;
//   * no crash, placements stay feasible, counters stay monotone after
//     recovery, drift alarms fire under sustained throttling, and the
//     prediction error re-converges once telemetry heals.

#include <cmath>

#include <gtest/gtest.h>

#include "src/fault/chaos.h"
#include "src/fault/inject.h"
#include "src/fault/plan.h"
#include "src/hw/counters.h"
#include "src/hw/gpu.h"
#include "src/sched/eas.h"

namespace eclarity {
namespace {

FaultPlanSpec ZeroPlan() {
  FaultPlanSpec plan;
  plan.seed = 1;
  return plan;
}

FaultPlanSpec RaplGlitchPlan() {
  FaultPlanSpec plan;
  plan.seed = 11;
  plan.rapl_jump_p = 0.04;
  plan.rapl_reset_p = 0.01;
  plan.dvfs_throttle_p = 0.03;
  plan.throttle_scale = 0.6;
  plan.throttle_quanta = 6;
  plan.max_consecutive = 4;
  return plan;
}

FaultPlanSpec SustainedThrottlePlan() {
  FaultPlanSpec plan;
  plan.seed = 17;
  plan.dvfs_throttle_p = 0.9;
  plan.throttle_scale = 0.4;
  plan.throttle_quanta = 10;
  plan.max_consecutive = 0;
  return plan;
}

FaultPlanSpec HealingOutagePlan() {
  FaultPlanSpec plan;
  plan.seed = 23;
  plan.rapl_jump_p = 0.5;
  plan.max_consecutive = 0;
  plan.stop_after = 120;
  return plan;
}

void ExpectReportsIdentical(const EasChaosReport& a, const EasChaosReport& b) {
  // Bit-level equality on the energies: determinism means the same floats,
  // not merely close ones.
  EXPECT_EQ(a.run.total_energy.joules(), b.run.total_energy.joules());
  EXPECT_EQ(a.run.total_ops_executed, b.run.total_ops_executed);
  EXPECT_EQ(a.run.missed_quanta, b.run.missed_quanta);
  EXPECT_EQ(a.run.degraded_quanta, b.run.degraded_quanta);
  EXPECT_EQ(a.run.throttled_quanta, b.run.throttled_quanta);
  EXPECT_EQ(a.run.guard_rejected_reads, b.run.guard_rejected_reads);
  EXPECT_EQ(a.run.implausible_deltas, b.run.implausible_deltas);
  EXPECT_EQ(a.injected_rapl, b.injected_rapl);
  EXPECT_EQ(a.throttle_events, b.throttle_events);
  EXPECT_EQ(a.guard_log, b.guard_log);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].core, b.placements[i].core);
    EXPECT_EQ(a.placements[i].opp, b.placements[i].opp);
    EXPECT_EQ(a.placements[i].predicted_joules, b.placements[i].predicted_joules);
  }
  EXPECT_EQ(a.package_stats.samples, b.package_stats.samples);
  EXPECT_EQ(a.package_stats.mean_abs_rel_error,
            b.package_stats.mean_abs_rel_error);
}

TEST(EasChaosTest, DeterministicUnderEveryPlan) {
  for (const FaultPlanSpec& plan :
       {ZeroPlan(), RaplGlitchPlan(), SustainedThrottlePlan(),
        HealingOutagePlan()}) {
    EasChaosOptions options;
    options.plan = plan;
    auto first = RunEasChaos(options);
    auto second = RunEasChaos(options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ExpectReportsIdentical(*first, *second);
  }
}

TEST(EasChaosTest, ZeroFaultPlanIsBitIdenticalToPlainPipeline) {
  EasChaosOptions options;
  options.plan = ZeroPlan();
  auto chaos = RunEasChaos(options);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();

  // The un-instrumented pipeline: same tasks, device, scheduler, quanta —
  // no injector, no guard, no telemetry struct at all.
  CpuDevice device(BigLittleProfile());
  const std::vector<Task> tasks = EasChaosTasks();
  auto scheduler =
      InterfaceEasScheduler::Create(tasks, device.profile(), options.quantum);
  ASSERT_TRUE(scheduler.ok());
  auto plain =
      RunSchedule(device, tasks, **scheduler, options.quanta, options.quantum);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  EXPECT_EQ(chaos->run.total_energy.joules(), plain->total_energy.joules());
  EXPECT_EQ(chaos->run.total_ops_executed, plain->total_ops_executed);
  EXPECT_EQ(chaos->run.missed_quanta, plain->missed_quanta);
  // And nothing fault-related fired.
  EXPECT_EQ(chaos->injected_rapl, 0u);
  EXPECT_EQ(chaos->throttle_events, 0u);
  EXPECT_EQ(chaos->run.implausible_deltas, 0);
  EXPECT_EQ(chaos->run.guard_rejected_reads, 0);
  EXPECT_EQ(chaos->final_guard_state, TelemetryGuard::State::kClosed);
}

TEST(EasChaosTest, PlacementsStayFeasibleUnderFaults) {
  for (const FaultPlanSpec& plan :
       {RaplGlitchPlan(), SustainedThrottlePlan(), HealingOutagePlan()}) {
    EasChaosOptions options;
    options.plan = plan;
    auto report = RunEasChaos(options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const CpuDevice device(BigLittleProfile());
    ASSERT_FALSE(report->placements.empty());
    for (const Placement& p : report->placements) {
      EXPECT_GE(p.core, 0);
      EXPECT_LT(p.core, device.CoreCount());
      EXPECT_GE(p.opp, 0);
      EXPECT_LT(p.opp, device.OppCount(p.core));
      EXPECT_TRUE(std::isfinite(p.predicted_joules));
      EXPECT_GE(p.uncertainty_joules, 0.0);
    }
    // Work still gets done under faults.
    EXPECT_GT(report->run.total_ops_executed, 0.0);
  }
}

TEST(EasChaosTest, SustainedThrottleTripsDriftAlarmAndWidensUncertainty) {
  EasChaosOptions options;
  options.plan = SustainedThrottlePlan();
  auto report = RunEasChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->throttle_events, 0u);
  EXPECT_GT(report->run.throttled_quanta, 0);
  // Throttling is invisible to the scheduler, so its predictions drift and
  // the continuous Table-1 audit catches it within the window.
  EXPECT_TRUE(report->scheduler_stats.drift_alarm);
  EXPECT_GT(report->run.degraded_quanta, 0);
  // Degraded mode widens the uncertainty the scheduler attaches. Both bars
  // must appear in the log: healthy early quanta and degraded later ones.
  bool saw_base = false;
  bool saw_widened = false;
  for (const Placement& p : report->placements) {
    if (p.predicted_joules <= 0.0) {
      continue;
    }
    const double rel = p.uncertainty_joules / p.predicted_joules;
    if (std::fabs(rel - InterfaceEasScheduler::kBaseUncertainty) < 1e-12) {
      saw_base = true;
    }
    if (std::fabs(rel - InterfaceEasScheduler::kDegradedUncertainty) < 1e-12) {
      saw_widened = true;
    }
  }
  EXPECT_TRUE(saw_base);
  EXPECT_TRUE(saw_widened);
}

TEST(EasChaosTest, RaplGlitchesAreCaughtNotTrusted) {
  EasChaosOptions options;
  options.plan = RaplGlitchPlan();
  auto report = RunEasChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->injected_rapl, 0u);
  // Every injected glitch that lands in a measured span is dropped by the
  // plausibility bound rather than polluting the audit trail.
  EXPECT_GT(report->run.implausible_deltas, 0);
  // The audited (non-quarantined) package error stays sane: a single
  // trusted 4 kJ+ jump would blow this up by orders of magnitude.
  EXPECT_LT(report->package_stats.mean_abs_rel_error, 0.5);
}

TEST(EasChaosTest, ErrorReconvergesOnceTelemetryHeals) {
  EasChaosOptions options;
  options.plan = HealingOutagePlan();
  options.quanta = 300;  // ~half the run is post-heal
  auto report = RunEasChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The outage was real: the breaker tripped and spans were dropped.
  EXPECT_GT(report->run.implausible_deltas, 0);
  EXPECT_GT(report->guard_transitions, 0u);
  // But after stop_after the plan heals; the breaker re-closes, the
  // quarantine lifts, and the windowed prediction error is back within the
  // paper's Table-1 bound.
  EXPECT_EQ(report->final_guard_state, TelemetryGuard::State::kClosed);
  EXPECT_FALSE(report->package_stats.quarantined);
  EXPECT_FALSE(report->package_stats.drift_alarm);
  EXPECT_LT(report->package_stats.windowed_abs_rel_error, 0.10);
}

TEST(NvmlChaosTest, ReadsStayMonotoneThroughFaultsAndRecovery) {
  FaultPlanSpec plan;
  plan.seed = 5;
  plan.nvml_fail_p = 0.3;
  plan.nvml_stale_p = 0.2;
  plan.max_consecutive = 4;
  plan.stop_after = 60;
  FaultInjector injector(plan);
  GpuDevice gpu(Rtx4090LikeProfile(), 9);
  NvmlCounter nvml(gpu);
  nvml.ArmFaults(&injector);

  KernelStats k;
  k.name = "span";
  k.instructions = 5e8;
  k.vram_sectors = 1e6;

  double last = -1.0;
  int successes = 0;
  for (int i = 0; i < 120; ++i) {
    gpu.ExecuteKernel(k);
    const Result<Energy> read = nvml.ReadWithRetry();
    if (!read.ok()) {
      continue;
    }
    ++successes;
    EXPECT_GE(read.value().joules(), last)
        << "non-monotone read at span " << i;
    last = read.value().joules();
  }
  // The plan heals at decision 60, so the tail must be all successes.
  EXPECT_GT(successes, 50);
  EXPECT_GT(nvml.retries(), 0u);
  EXPECT_GT(nvml.backoff_spent().seconds(), 0.0);
}

TEST(ServiceChaosTest, DeterministicAndSurvivesFlakyTelemetry) {
  ServiceChaosOptions options;
  options.plan.seed = 7;
  options.plan.nvml_fail_p = 0.15;
  options.plan.nvml_timeout_p = 0.05;
  options.plan.nvml_stale_p = 0.10;
  options.plan.rapl_jump_p = 0.02;
  options.plan.max_consecutive = 6;
  auto first = RunWebserviceChaos(options);
  auto second = RunWebserviceChaos(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->run.measured_energy.joules(),
            second->run.measured_energy.joules());
  EXPECT_EQ(first->run.gpu_fallbacks, second->run.gpu_fallbacks);
  EXPECT_EQ(first->run.node_fallbacks, second->run.node_fallbacks);
  EXPECT_EQ(first->guard_log, second->guard_log);

  EXPECT_GT(first->injected_nvml, 0u);
  EXPECT_GT(first->run.measured_energy.joules(), 0.0);
  // Every request got billed something finite and non-negative even when
  // its telemetry was out.
  for (double j : first->run.per_request_joules) {
    EXPECT_TRUE(std::isfinite(j));
    EXPECT_GE(j, 0.0);
  }
}

TEST(ServiceChaosTest, ZeroFaultPlanMatchesPlainService) {
  ServiceChaosOptions options;
  options.plan = ZeroPlan();
  options.requests = 200;
  auto chaos = RunWebserviceChaos(options);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();

  WebService plain(WebServiceConfig{}, options.service_seed);
  auto expected = plain.Run(options.requests);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  EXPECT_EQ(chaos->run.measured_energy.joules(),
            expected->measured_energy.joules());
  EXPECT_EQ(chaos->run.gpu_energy.joules(), expected->gpu_energy.joules());
  EXPECT_EQ(chaos->run.node_energy.joules(), expected->node_energy.joules());
  EXPECT_EQ(chaos->run.gpu_fallbacks, 0u);
  EXPECT_EQ(chaos->run.node_fallbacks, 0u);
  EXPECT_EQ(chaos->run.gpu_guard_rejections, 0u);
  EXPECT_EQ(chaos->final_guard_state, TelemetryGuard::State::kClosed);
}

TEST(ServiceChaosTest, TotalOutageFallsBackToModeledEnergy) {
  ServiceChaosOptions options;
  options.plan.seed = 3;
  options.plan.nvml_fail_p = 1.0;
  options.plan.max_consecutive = 0;  // never forced back to success
  options.requests = 150;
  auto report = RunWebserviceChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // All CNN misses were billed from the kernel model; the breaker opened.
  EXPECT_GT(report->run.gpu_fallbacks, 0u);
  EXPECT_EQ(report->run.gpu_fallbacks, report->run.counters.cnn_misses);
  EXPECT_GT(report->guard_transitions, 0u);
  EXPECT_GT(report->run.gpu_guard_rejections, 0u);
  EXPECT_GT(report->run.gpu_energy.joules(), 0.0);
}

}  // namespace
}  // namespace eclarity
