// Stress and determinism tests for the concurrent query layer (src/svc):
// the sharded striped-lock LRU cache and the snapshot-swapping
// QueryService. The load tests run real threads and are meant to be
// exercised under ThreadSanitizer (the CI sanitize-thread job does); the
// determinism tests enforce the service contract that a concurrent run is
// bit-identical to a single-threaded replay of the same request log.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/interp.h"
#include "src/lang/parser.h"
#include "src/svc/query_service.h"
#include "src/svc/sharded_cache.h"
#include "src/util/rng.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::unique_ptr<QueryService> MustCreate(const std::string& source,
                                         QueryService::Options options = {},
                                         EcvProfile profile = {}) {
  auto service = QueryService::Create(MustParse(source), options,
                                      std::move(profile));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

// The Fig. 1 interface — the same corpus the engine-parity tests use.
constexpr char kFig1Source[] = R"(
const max_response_len = 1024;
interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}
interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 0.001mJ * response_len;
  } else {
    return 0.1mJ * response_len;
  }
}
interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * (image_size - n_zeros) * 20nJ +
         8 * n_embedding * 0.1nJ +
         16 * n_embedding * 1.5nJ;
}
)";

// --- ShardedLruMap ----------------------------------------------------------

TEST(ShardedLruMapTest, SplitsCapacityAcrossShards) {
  ShardedLruMap<uint64_t, int> cache(10, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 10u);
  size_t summed = 0;
  for (size_t i = 0; i < cache.shard_count(); ++i) {
    const auto stats = cache.StatsForShard(i);
    EXPECT_GE(stats.capacity, 2u);  // 10/4 split: {3, 3, 2, 2}
    summed += stats.capacity;
  }
  EXPECT_EQ(summed, 10u);
}

TEST(ShardedLruMapTest, ClampsShardCountToCapacity) {
  ShardedLruMap<uint64_t, int> cache(3, 16);
  EXPECT_EQ(cache.shard_count(), 3u);
  for (size_t i = 0; i < cache.shard_count(); ++i) {
    EXPECT_EQ(cache.StatsForShard(i).capacity, 1u);
  }
}

TEST(ShardedLruMapTest, ZeroCapacityNeverStores) {
  ShardedLruMap<uint64_t, int> cache(0, 16);
  EXPECT_EQ(cache.shard_count(), 1u);  // one (disabled) shard
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0u);
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.lookups(), 1u);
}

TEST(ShardedLruMapTest, BasicHitMissAndEviction) {
  ShardedLruMap<uint64_t, int> cache(2, 1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 now most-recent
  EXPECT_EQ(*cache.Get(1), 10);
  EXPECT_TRUE(cache.Put(3, 30));  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.TotalStats().evictions, 1u);
}

// A hash that sends every key to the same shard: correctness must not
// depend on the spreading being good, only the contention does.
struct CollidingHash {
  size_t operator()(uint64_t) const { return 42; }
};

TEST(ShardedLruMapTest, ForcedCollisionsStillBehaveAsOneLru) {
  ShardedLruMap<uint64_t, uint64_t, CollidingHash> cache(4, 8);
  const size_t target = cache.ShardIndexOf(0);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(cache.ShardIndexOf(key), target);
    cache.Put(key, key * 2);
  }
  // All residency is in the one shard the colliding hash picked.
  const auto stats = cache.StatsForShard(target);
  EXPECT_EQ(stats.size, cache.StatsForShard(target).capacity);
  EXPECT_EQ(cache.size(), stats.size);
  // The most recent inserts survived.
  for (uint64_t key = 100 - stats.size; key < 100; ++key) {
    ASSERT_TRUE(cache.Get(key).has_value()) << key;
    EXPECT_EQ(*cache.Get(key), key * 2);
  }
}

TEST(ShardedLruMapTest, CapacityOneChurnFromTwoThreads) {
  // A single capacity-1 shard shared by two writers: pure eviction churn.
  // Every Put either refreshes the resident key or evicts it, so the final
  // state is exactly one resident entry and the stats stay coherent.
  ShardedLruMap<uint64_t, uint64_t> cache(1, 1);
  constexpr int kOps = 20000;
  auto churn = [&cache](uint64_t tid) {
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t key = tid * kOps + i;
      cache.Put(key, key);
      cache.Get(key);  // may hit or miss depending on interleaving
    }
  };
  std::thread a(churn, 0);
  std::thread b(churn, 1);
  a.join();
  b.join();
  EXPECT_EQ(cache.size(), 1u);
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.lookups(), static_cast<uint64_t>(2 * kOps));
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups());
  // 2*kOps distinct keys went through a 1-entry cache: all but the resident
  // one were displaced.
  EXPECT_EQ(stats.evictions, static_cast<uint64_t>(2 * kOps - 1));
}

TEST(ShardedLruMapTest, ConcurrentMixedLoadStatsAddUp) {
  ShardedLruMap<uint64_t, uint64_t> cache(64, 8);
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 5000;
  std::atomic<uint64_t> gets{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &gets, t] {
      Rng rng(1000 + t);
      uint64_t local_gets = 0;
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = rng.NextUint64() % 256;
        if (rng.NextUint64() % 2 == 0) {
          cache.Get(key);
          ++local_gets;
        } else {
          cache.Put(key, key);
        }
      }
      gets.fetch_add(local_gets, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const auto total = cache.TotalStats();
  // Quiescent: the aggregate must account for every Get, and the per-shard
  // rows must sum to the aggregate.
  EXPECT_EQ(total.lookups(), gets.load());
  ShardedLruMap<uint64_t, uint64_t>::ShardStats summed;
  for (size_t i = 0; i < cache.shard_count(); ++i) {
    const auto shard = cache.StatsForShard(i);
    EXPECT_LE(shard.size, shard.capacity);
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.evictions += shard.evictions;
    summed.size += shard.size;
  }
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_EQ(summed.size, total.size);
  EXPECT_LE(cache.size(), cache.capacity());
}

// --- QueryService: determinism under concurrency ----------------------------

// The serve-loop request mix: a pure function of the global query index, so
// concurrent clients and the single-threaded replay generate the same log.
Query MixedQueryAt(size_t global) {
  Query query;
  query.interface = "E_ml_webservice_handle";
  query.args = {Value::Number(50176.0), Value::Number(10000.0)};
  if (global % 64 == 0) {
    query.kind = QueryKind::kMonteCarlo;
    query.seed = global;
    query.samples = 128;
  } else if (global % 16 == 0) {
    query.kind = QueryKind::kDistribution;
  } else if (global % 16 == 8) {
    query.kind = QueryKind::kSample;
    query.seed = global * 2 + 1;
  } else {
    query.kind = QueryKind::kExpected;
  }
  return query;
}

TEST(QueryServiceConcurrencyTest, MixedLoadBitIdenticalToSingleThreadedReplay) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 96;
  auto service = MustCreate(kFig1Source);

  std::vector<std::vector<std::string>> fingerprints(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &fingerprints, t] {
      std::vector<std::string>& out = fingerprints[t];
      out.reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        auto result = service->Dispatch(MixedQueryAt(t * kPerThread + i));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        out.push_back(result->Fingerprint());
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Replay the identical request log on ONE thread through a fresh service.
  auto replay = MustCreate(kFig1Source);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      auto result = replay->Dispatch(MixedQueryAt(t * kPerThread + i));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->Fingerprint(), fingerprints[t][i])
          << "thread " << t << " query " << i;
    }
  }

  // Quiescent cache accounting: every lookup is a hit or a miss, and the
  // per-shard rows sum to the aggregate.
  const QueryService::CacheStats total = service->TotalCacheStats();
  EXPECT_EQ(total.hits + total.misses, total.lookups());
  uint64_t shard_lookups = 0;
  for (const QueryService::CacheStats& shard : service->PerShardCacheStats()) {
    shard_lookups += shard.lookups();
  }
  EXPECT_EQ(shard_lookups, total.lookups());
  EXPECT_GT(total.hits, 0u);  // one arg vector: the cache must be doing work
}

TEST(QueryServiceConcurrencyTest, EightThreadParityCorpusMatchesEvaluator) {
  // Every entry in the engine-parity corpus, answered concurrently by the
  // service, must carry the exact bits the single-threaded engine produces.
  struct Case {
    const char* source;
    const char* entry;
    std::vector<Value> args;
  };
  const std::vector<Case> corpus = {
      {kFig1Source, "E_ml_webservice_handle",
       {Value::Number(50176.0), Value::Number(10000.0)}},
      {R"(
const k_iters = 4;
const k_unit = 2mJ;
interface f(x) {
  let mut total = 0J;
  for i in 0..k_iters {
    ecv spike ~ bernoulli(0.25);
    let step = spike ? k_unit * (i + 1) : k_unit;
    total = total + step;
  }
  return total + min(x, k_iters) * 1mJ;
}
)",
       "f",
       {Value::Number(7.0)}},
      {R"(
interface outer(n) {
  ecv tier ~ categorical(0: 0.5, 1: 0.3, 2: 0.2);
  return inner(tier) * n;
}
interface inner(tier) {
  ecv burst ~ uniform_int(1, 3);
  return (tier + 1) * burst * 1uJ;
}
)",
       "outer",
       {Value::Number(2.0)}},
  };

  for (const Case& c : corpus) {
    SCOPED_TRACE(c.entry);
    const Program program = MustParse(c.source);
    Evaluator evaluator(program);
    auto reference = evaluator.ExpectedEnergy(c.entry, c.args, {});
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const uint64_t want = Bits(reference->joules());

    auto service = MustCreate(c.source);
    std::vector<std::thread> workers;
    workers.reserve(8);
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&service, &c, want] {
        for (int i = 0; i < 50; ++i) {
          Query query;
          query.interface = c.entry;
          query.args = c.args;
          auto energy = service->Expected(query);
          ASSERT_TRUE(energy.ok()) << energy.status().ToString();
          EXPECT_EQ(Bits(energy->joules()), want);
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
}

TEST(QueryServiceConcurrencyTest, PerQueryProfileOverrideMatchesEvaluator) {
  const char* source = R"(
interface f() {
  ecv mode ~ bernoulli(0.5);
  return mode ? 1mJ : 2mJ;
}
)";
  EcvProfile profile;
  ASSERT_TRUE(profile
                  .Set("mode", {{Value::Bool(true), 0.2},
                                {Value::Bool(false), 0.8}})
                  .ok());
  const Program program = MustParse(source);
  Evaluator evaluator(program);
  auto reference = evaluator.ExpectedEnergy("f", {}, profile);
  ASSERT_TRUE(reference.ok());

  auto service = MustCreate(source);
  Query query;
  query.interface = "f";
  query.profile = profile;
  auto overridden = service->Expected(query);
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(Bits(overridden->joules()), Bits(reference->joules()));

  // The override and the base answer use distinct cache keys.
  Query base;
  base.interface = "f";
  auto plain = service->Expected(base);
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(Bits(plain->joules()), Bits(overridden->joules()));
  EXPECT_EQ(service->TotalCacheStats().misses, 2u);
}

TEST(QueryServiceConcurrencyTest, MonteCarloDeterministicOnPool) {
  QueryService::Options options;
  options.mc_pool_threads = 4;
  auto service = MustCreate(kFig1Source, options);
  Query query = MixedQueryAt(0);
  ASSERT_EQ(query.kind, QueryKind::kMonteCarlo);
  query.samples = 1000;
  query.seed = 42;

  // The reference stream: the engine itself, fed the same seed.
  const Program program = MustParse(kFig1Source);
  Evaluator evaluator(program);
  Rng rng(42);
  auto reference = evaluator.MonteCarloMean(query.interface, query.args, {},
                                            rng, query.samples);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Concurrent submitters with the same seed must all reproduce it.
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&service, &query, &reference] {
      for (int i = 0; i < 8; ++i) {
        auto mc = service->MonteCarlo(query);
        ASSERT_TRUE(mc.ok()) << mc.status().ToString();
        EXPECT_EQ(Bits(mc->joules()), Bits(reference->joules()));
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

TEST(QueryServiceConcurrencyTest, BatchBitIdenticalToSinglesAndDeduped) {
  auto service = MustCreate(kFig1Source);
  std::vector<Query> batch;
  for (size_t i = 0; i < 48; ++i) {
    batch.push_back(MixedQueryAt(i));
  }
  auto batched = service->EvaluateBatch(batch);
  ASSERT_EQ(batched.size(), batch.size());

  auto singles = MustCreate(kFig1Source);
  for (size_t i = 0; i < batch.size(); ++i) {
    auto one = singles->Dispatch(batch[i]);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    EXPECT_EQ(batched[i]->Fingerprint(), one->Fingerprint()) << "query " << i;
  }

  // One arg vector and one profile: the whole batch shares one enumeration
  // key, so the sharded cache saw exactly one miss.
  EXPECT_EQ(service->TotalCacheStats().misses, 1u);
}

// The batch request log: a pure function of (thread, round, lane), so the
// concurrent run and the single-threaded replay see identical batches.
std::vector<Query> BatchLogAt(size_t thread, size_t round) {
  std::vector<Query> batch;
  batch.reserve(16);
  for (size_t lane = 0; lane < 16; ++lane) {
    const size_t global = (thread * 97 + round) * 16 + lane;
    Query query;
    query.interface = "E_ml_webservice_handle";
    query.args = {Value::Number(50176.0 + static_cast<double>(global % 6) * 64.0),
                  Value::Number(10000.0)};
    query.kind =
        global % 5 == 0 ? QueryKind::kDistribution : QueryKind::kExpected;
    batch.push_back(std::move(query));
  }
  return batch;
}

TEST(QueryServiceConcurrencyTest, BatchDispatchBitIdenticalToReplay) {
  // 8 threads each push rounds of 16-lane batches through the SoA batch
  // path; every fingerprint must match a single-threaded replay of the
  // identical batch log on a fresh service.
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 24;
  auto service = MustCreate(kFig1Source);

  std::vector<std::vector<std::string>> fingerprints(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &fingerprints, t] {
      std::vector<std::string>& out = fingerprints[t];
      out.reserve(kRounds * 16);
      for (size_t r = 0; r < kRounds; ++r) {
        const auto results = service->EvaluateBatch(BatchLogAt(t, r));
        for (const auto& result : results) {
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          out.push_back(result->Fingerprint());
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  auto replay = MustCreate(kFig1Source);
  for (size_t t = 0; t < kThreads; ++t) {
    size_t cursor = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      const auto results = replay->EvaluateBatch(BatchLogAt(t, r));
      for (const auto& result : results) {
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->Fingerprint(), fingerprints[t][cursor])
            << "thread " << t << " round " << r;
        ++cursor;
      }
    }
  }
}

TEST(QueryServiceConcurrencyTest, BatchDispatchIsSnapshotAtomicUnderSwaps) {
  // EvaluateBatch pins ONE snapshot for the whole batch, so while a writer
  // flips the profile every answer in a batch must come from the same
  // world: the per-lane fingerprints are uniformly the base world's or
  // uniformly the hot world's, never a mix.
  EcvProfile hot;
  hot.SetBernoulli("request_hit", 0.9);
  const std::vector<Query> batch = BatchLogAt(0, 0);

  // Oracle fingerprints for both legal worlds, from fresh services.
  std::vector<std::string> world_a;
  std::vector<std::string> world_b;
  {
    auto base_service = MustCreate(kFig1Source);
    auto hot_service = MustCreate(kFig1Source, {}, hot);
    for (const Query& query : batch) {
      auto a = base_service->Dispatch(query);
      auto b = hot_service->Dispatch(query);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_NE(a->Fingerprint(), b->Fingerprint());
      world_a.push_back(a->Fingerprint());
      world_b.push_back(b->Fingerprint());
    }
  }

  auto service = MustCreate(kFig1Source);
  std::atomic<bool> stop{false};
  std::thread writer([&service, &hot, &stop] {
    EcvProfile base;  // empty profile: the seed world
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      service->UpdateProfile(i % 2 == 0 ? hot : base);
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&service, &batch, &world_a, &world_b] {
      for (int round = 0; round < 50; ++round) {
        const auto results = service->EvaluateBatch(batch);
        ASSERT_EQ(results.size(), batch.size());
        ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
        const std::vector<std::string>* want =
            results[0]->Fingerprint() == world_a[0] ? &world_a : &world_b;
        for (size_t i = 0; i < results.size(); ++i) {
          ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
          EXPECT_EQ(results[i]->Fingerprint(), (*want)[i])
              << "round " << round << " lane " << i << ": mixed snapshots";
        }
      }
    });
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(QueryServiceConcurrencyTest, ErrorsPropagateAndAreNeverCached) {
  auto service = MustCreate(kFig1Source);
  Query query;
  query.interface = "E_no_such_interface";
  for (int i = 0; i < 3; ++i) {
    auto result = service->Expected(query);
    ASSERT_FALSE(result.ok());
  }
  const QueryService::CacheStats stats = service->TotalCacheStats();
  EXPECT_EQ(stats.misses, 3u);  // never satisfied from cache
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.size, 0u);
}

TEST(QueryServiceConcurrencyTest, RejectsOpenPrograms) {
  auto program = ParseProgram(
      "interface f(x) { return E_imported(x); }");
  ASSERT_TRUE(program.ok());
  auto service = QueryService::Create(std::move(*program));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
}

// --- QueryService: snapshot publication -------------------------------------

TEST(QueryServiceSnapshotTest, PinnedSnapshotSurvivesProfileSwap) {
  auto service = MustCreate(kFig1Source);
  Query query = MixedQueryAt(1);  // kExpected

  auto before = service->Expected(query);
  ASSERT_TRUE(before.ok());
  auto pinned = service->AcquireSnapshot();

  EcvProfile always_hit;
  always_hit.SetBernoulli("request_hit", 1.0);
  service->UpdateProfile(always_hit);

  // New queries see the new profile; the pinned snapshot still answers with
  // the old world, bit for bit.
  auto after = service->Expected(query);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(Bits(after->joules()), Bits(before->joules()));
  auto on_pinned = service->ExpectedOn(*pinned, query);
  ASSERT_TRUE(on_pinned.ok());
  EXPECT_EQ(Bits(on_pinned->joules()), Bits(before->joules()));
}

TEST(QueryServiceSnapshotTest, ProfileSwapsRacingQueriesYieldOnlyLegalAnswers) {
  auto service = MustCreate(kFig1Source);
  Query query = MixedQueryAt(1);  // kExpected

  // The two legal worlds, computed up front.
  EcvProfile hot;
  hot.SetBernoulli("request_hit", 0.9);
  auto base_answer = service->Expected(query);
  ASSERT_TRUE(base_answer.ok());
  Query hot_query = query;
  hot_query.profile = hot;
  auto hot_answer = service->Expected(hot_query);
  ASSERT_TRUE(hot_answer.ok());
  const uint64_t legal_a = Bits(base_answer->joules());
  const uint64_t legal_b = Bits(hot_answer->joules());

  std::atomic<bool> stop{false};
  std::thread writer([&service, &hot, &stop] {
    EcvProfile base;  // empty profile: the seed world
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      service->UpdateProfile(i % 2 == 0 ? hot : base);
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &query, legal_a, legal_b] {
      for (int i = 0; i < 400; ++i) {
        auto energy = service->Expected(query);
        ASSERT_TRUE(energy.ok()) << energy.status().ToString();
        const uint64_t got = Bits(energy->joules());
        EXPECT_TRUE(got == legal_a || got == legal_b) << got;
      }
    });
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(QueryServiceSnapshotTest, ProgramSwapBumpsGenerationAndRekeysCache) {
  auto service = MustCreate("interface f() { return 1J; }");
  Query query;
  query.interface = "f";
  auto v1 = service->Expected(query);
  ASSERT_TRUE(v1.ok());
  EXPECT_DOUBLE_EQ(v1->joules(), 1.0);
  EXPECT_EQ(service->snapshot_generation(), 0u);

  ASSERT_TRUE(service->UpdateProgram(
                         MustParse("interface f() { return 2J; }"))
                  .ok());
  EXPECT_EQ(service->snapshot_generation(), 1u);
  auto v2 = service->Expected(query);
  ASSERT_TRUE(v2.ok());
  // The generation is part of the cache key, so the old program's cached
  // enumeration cannot leak into the new world.
  EXPECT_DOUBLE_EQ(v2->joules(), 2.0);
}

// --- QueryService: analytic certified modes ---------------------------------

// A request mix cycling the per-query dist_mode override — a pure function
// of the global index, so the concurrent run and the replay share a log.
Query AnalyticQueryAt(size_t global) {
  Query query;
  query.interface = "acc_chain";
  query.args = {Value::Number(6.0)};
  query.kind = QueryKind::kExpected;
  switch (global % 4) {
    case 0:  // service default (enumeration) baseline
      break;
    case 1:
      query.dist_mode = DistMode::kAnalyticExact;
      break;
    case 2:
      query.kind = QueryKind::kDistribution;
      query.dist_mode = DistMode::kAnalyticBounded;
      break;
    default:
      query.dist_mode = DistMode::kAnalyticMoments;
      break;
  }
  return query;
}

TEST(QueryServiceConcurrencyTest,
     AnalyticModesBitIdenticalToSingleThreadedReplay) {
  // 8 threads hammer the snapshot evaluator's memoized sub-distribution
  // cache with mixed certified/enumeration queries; the outcome
  // fingerprints (which include the certified bound and pruned-mass bits)
  // must match a single-threaded replay of the same log exactly.
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 64;
  auto service = MustCreate(parity::kAccumulatorChainSource);

  std::vector<std::vector<std::string>> fingerprints(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &fingerprints, t] {
      std::vector<std::string>& out = fingerprints[t];
      out.reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        auto result = service->Dispatch(AnalyticQueryAt(t * kPerThread + i));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        out.push_back(result->Fingerprint());
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  auto replay = MustCreate(parity::kAccumulatorChainSource);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      auto result = replay->Dispatch(AnalyticQueryAt(t * kPerThread + i));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->Fingerprint(), fingerprints[t][i])
          << "thread " << t << " query " << i;
    }
  }
}

TEST(QueryServiceConcurrencyTest, AnalyticOutcomesMatchEvaluatorAndCertify) {
  // The concurrent service's certified answers carry the single-threaded
  // engine's exact bits (exact mode) and a bound containing the exact mean
  // (bounded/moments modes).
  const Program program = MustParse(parity::kAccumulatorChainSource);
  Evaluator evaluator(program);
  auto exact = evaluator.ExpectedEnergy("acc_chain", {Value::Number(6.0)}, {});
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const double want = exact->joules();

  auto service = MustCreate(parity::kAccumulatorChainSource);
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&service, want] {
      for (size_t i = 1; i < 32; ++i) {  // skip the enumerate slot
        const Query query = AnalyticQueryAt(i % 4 == 0 ? i + 1 : i);
        auto outcome = service->Dispatch(query);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        EXPECT_TRUE(outcome->analytic);
        if (query.dist_mode == DistMode::kAnalyticExact) {
          EXPECT_EQ(Bits(outcome->joules), Bits(want));
          EXPECT_EQ(outcome->error_bound, 0.0);
        } else {
          EXPECT_LE(std::abs(outcome->joules - want), outcome->error_bound);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

TEST(QueryServiceSnapshotTest, ProgramSwapRekeysAnalyticCache) {
  // The sub-distribution cache lives in the snapshot's evaluator, which is
  // rebuilt on UpdateProgram — so a new generation can never be answered
  // from the old program's cached analytic results.
  auto service = MustCreate(R"(
interface f() {
  let mut acc = 0J;
  ecv hit ~ bernoulli(0.5);
  if (hit) { acc = acc + 2mJ; }
  return acc;
}
)");
  Query query;
  query.interface = "f";
  query.dist_mode = DistMode::kAnalyticExact;
  auto v1 = service->Dispatch(query);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_DOUBLE_EQ(v1->joules, 0.001);
  EXPECT_TRUE(v1->analytic);

  ASSERT_TRUE(service
                  ->UpdateProgram(MustParse(R"(
interface f() {
  let mut acc = 0J;
  ecv hit ~ bernoulli(0.5);
  if (hit) { acc = acc + 4mJ; }
  return acc;
}
)"))
                  .ok());
  auto v2 = service->Dispatch(query);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_DOUBLE_EQ(v2->joules, 0.002);
}

TEST(QueryServiceSnapshotTest, ZeroCapacityCacheStillAnswersCorrectly) {
  QueryService::Options options;
  options.cache_capacity = 0;
  auto uncached = MustCreate(kFig1Source, options);
  auto cached = MustCreate(kFig1Source);
  Query query = MixedQueryAt(1);
  for (int i = 0; i < 3; ++i) {
    auto a = uncached->Expected(query);
    auto b = cached->Expected(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Bits(a->joules()), Bits(b->joules()));
  }
  const QueryService::CacheStats stats = uncached->TotalCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);  // nothing ever sticks, every lookup misses
  EXPECT_EQ(stats.size, 0u);
}

}  // namespace
}  // namespace eclarity
