// Randomized generator of deep ECV programs for the differential harness.
//
// Each generated program is an accumulator over `depth` independent draws —
// the shape whose exact enumeration is exponential (2..4 outcomes per draw)
// and which the analytic engines collapse to polynomial work. The generator
// deliberately mixes constructs the shape analysis accepts (guarded and
// value-form increments, det interludes, affine call wrappers) with ones it
// must reject (ECV-dependent multiplies, nonlinear returns), so a corpus
// replay exercises both the analytic fast path and the
// fall-back-to-enumeration contract on the same distribution of programs.

#ifndef ECLARITY_TESTS_DEEP_PROGRAM_GEN_H_
#define ECLARITY_TESTS_DEEP_PROGRAM_GEN_H_

#include <cstdio>
#include <string>

#include "src/util/rng.h"

namespace eclarity {
namespace deepgen {

inline std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// One random draw + increment statement pair appended to `body`.
// `friendly` biases toward analytic-shaped constructs; `binary_only`
// restricts to Bernoulli draws (2^depth total assignments — deep but still
// cheaply enumerable, so the exact reference stays affordable at depth 14).
inline void AppendDraw(Rng& rng, int index, bool friendly, bool binary_only,
                       std::string& body) {
  const std::string ev = "e" + std::to_string(index);
  const double unit_uj = static_cast<double>(rng.UniformInt(1, 9));
  const int kind = binary_only ? 0 : static_cast<int>(rng.UniformInt(0, 3));
  if (kind == 0) {
    const double p = 0.05 + 0.9 * (static_cast<double>(rng.UniformInt(0, 16)) /
                                   16.0);
    body += "  ecv " + ev + " ~ bernoulli(" + Num(p) + ");\n";
    // Guard-form increment; sometimes with an else-arm, sometimes without
    // (the absent arm is the "truly unchanged accumulator" case).
    body += "  if (" + ev + ") { acc = acc + " + Num(unit_uj) + "uJ; }";
    if (rng.Bernoulli(0.5)) {
      body += " else { acc = acc + " + Num(unit_uj / 4.0) + "uJ; }";
    }
    body += "\n";
    return;
  }
  if (kind == 1) {
    body += "  ecv " + ev + " ~ categorical(0: 0.5, 1: 0.3, 2: 0.2);\n";
  } else {
    const int lo = static_cast<int>(rng.UniformInt(0, 2));
    const int hi = lo + static_cast<int>(rng.UniformInt(1, 3));
    body += "  ecv " + ev + " ~ uniform_int(" + std::to_string(lo) + ", " +
            std::to_string(hi) + ");\n";
  }
  if (friendly || rng.Bernoulli(0.7)) {
    // Value-form increment, linear in the draw.
    body += "  acc = acc + " + ev + " * " + Num(unit_uj) + "uJ;\n";
  } else {
    // Draw-dependent branching on a numeric ECV: still enumerable, and a
    // shape the exact analyzer may need its generic walker for.
    body += "  if (" + ev + " > 0) { acc = acc + " + ev + " * " +
            Num(unit_uj) + "uJ; } else { acc = acc + " + Num(unit_uj / 2.0) +
            "uJ; }\n";
  }
}

// Generates a program whose entry interface is `deep(n)` with `depth`
// independent draws (support 2..4 each). `friendly` == true keeps every
// construct inside the analytic-exact shape; false mixes in constructs that
// force engine-specific handling or enumeration fallback.
inline std::string DeepProgram(Rng& rng, int depth, bool friendly,
                               bool binary_only = false) {
  std::string body = "  let mut acc = 0J;\n";
  for (int i = 0; i < depth; ++i) {
    AppendDraw(rng, i, friendly, binary_only, body);
    if (rng.Bernoulli(0.3)) {
      // Det interlude: unrelated arithmetic the walkers must carry through.
      body += "  let d" + std::to_string(i) + " = n * " +
              std::to_string(i + 1) + ";\n";
      body += "  acc = acc + d" + std::to_string(i) + " * 1nJ;\n";
    }
  }
  // Tail: plain accumulator, accumulator + det shift, or (unfriendly) a
  // nonlinear return that the bounded engine must treat as a mixture /
  // the exact engine per-leaf.
  std::string ret;
  const int tail = static_cast<int>(rng.UniformInt(0, friendly ? 1 : 2));
  if (tail == 0) {
    ret = "  return acc;\n";
  } else if (tail == 1) {
    ret = "  return acc + n * 3uJ;\n";
  } else {
    ret = "  return acc + min(n, 4) * 2uJ;\n";
  }
  std::string program =
      "interface deep_core(n) {\n" + body + ret + "}\n";
  // Optionally stack affine wrappers (exercises call handling / the
  // memoized sub-distribution cache).
  std::string entry = "deep_core";
  const int wrappers = static_cast<int>(rng.UniformInt(0, 2));
  for (int w = 0; w < wrappers; ++w) {
    const std::string name = "deep_wrap" + std::to_string(w);
    const double scale = static_cast<double>(rng.UniformInt(1, 3));
    program += "interface " + name + "(n) { return " + Num(scale) + " * " +
               entry + "(n) + " + Num(static_cast<double>(w + 1)) +
               "uJ; }\n";
    entry = name;
  }
  program += "interface deep(n) { return " + entry + "(n); }\n";
  return program;
}

}  // namespace deepgen
}  // namespace eclarity

#endif  // ECLARITY_TESTS_DEEP_PROGRAM_GEN_H_
