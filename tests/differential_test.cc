// Differential-testing harness for the analytic distribution algebra
// (src/eval/analytic.*), the archetype deliverable of the "certified
// bounds" work: every program is replayed through
//
//   * the tree-walking reference interpreter (exact enumeration fold),
//   * the lowered fast path (exact enumeration fold), and
//   * the analytic engines (kAnalyticExact / kAnalyticBounded /
//     kAnalyticMoments),
//
// and the answers are compared under the algebra's contracts:
//
//   * EXACT BIT-IDENTITY — whenever an engine claims exactness
//     (CertifiedDistribution::exact), its atoms, probability bits, and mean
//     must equal the reference enumeration fold bit for bit, and its error
//     bound must be zero. kAnalyticExact must always claim exactness
//     (analytically or through its enumeration fallback).
//   * BOUNDED CONTAINMENT — approximate answers must satisfy
//     |exact_mean - mean| <= mean_error_bound, with [min_joules,
//     max_joules] covering the full exact support and pruned_mass in [0, 1].
//   * ERROR PARITY — failing programs must fail with the same status code
//     and message from every engine (the fallback contract: anything the
//     algebra cannot reproduce exactly is re-run through enumeration).
//
// The corpus is the engine-parity corpus (tests/parity_programs.h, shared
// with fastpath_test.cc) plus randomized deep ECV programs
// (tests/deep_program_gen.h) whose path counts make enumeration the
// expensive engine and the analytic path the interesting one.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/eval/interp.h"
#include "src/lang/parser.h"
#include "src/util/rng.h"
#include "tests/deep_program_gen.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::vector<Value> NumberArgs(const std::vector<double>& xs) {
  std::vector<Value> args;
  args.reserve(xs.size());
  for (double x : xs) {
    args.push_back(Value::Number(x));
  }
  return args;
}

struct ModeCase {
  const char* name;
  DistMode mode;
  double prune = 0.0;
};

const ModeCase kModes[] = {
    {"exact", DistMode::kAnalyticExact, 0.0},
    {"bounded", DistMode::kAnalyticBounded, 0.0},
    {"bounded_pruned", DistMode::kAnalyticBounded, 1e-3},
    {"moments", DistMode::kAnalyticMoments, 0.0},
};

EvalOptions ModeOptions(const ModeCase& mode) {
  EvalOptions options;
  options.dist_mode = mode.mode;
  options.prune_threshold = mode.prune;
  return options;
}

void ExpectExactBitIdentity(const CertifiedDistribution& ref,
                            const CertifiedDistribution& got) {
  EXPECT_TRUE(got.exact);
  EXPECT_EQ(got.mean_error_bound, 0.0);
  EXPECT_EQ(got.pruned_mass, 0.0);
  EXPECT_EQ(Bits(got.mean), Bits(ref.mean));
  ASSERT_TRUE(got.has_distribution);
  const auto& ref_atoms = ref.distribution.atoms();
  const auto& got_atoms = got.distribution.atoms();
  ASSERT_EQ(got_atoms.size(), ref_atoms.size());
  for (size_t i = 0; i < ref_atoms.size(); ++i) {
    EXPECT_EQ(Bits(got_atoms[i].value), Bits(ref_atoms[i].value))
        << "atom " << i;
    EXPECT_EQ(Bits(got_atoms[i].probability), Bits(ref_atoms[i].probability))
        << "atom " << i;
  }
}

void ExpectBoundedContainment(const CertifiedDistribution& ref,
                              const CertifiedDistribution& got) {
  EXPECT_TRUE(std::isfinite(got.mean));
  EXPECT_GE(got.mean_error_bound, 0.0);
  EXPECT_LE(std::abs(ref.mean - got.mean), got.mean_error_bound)
      << "exact mean " << ref.mean << " vs bounded mean " << got.mean
      << " +/- " << got.mean_error_bound;
  EXPECT_GE(got.pruned_mass, 0.0);
  EXPECT_LE(got.pruned_mass, 1.0 + 1e-12);
  // The certified support bounds must cover the full exact support.
  EXPECT_LE(got.min_joules, ref.distribution.MinValue() + 1e-18);
  EXPECT_GE(got.max_joules, ref.distribution.MaxValue() - 1e-18);
}

// Replays (program, entry, args, profile) through the reference and every
// analytic mode, checking the contract that applies to each answer.
void ExpectDifferentialAgreement(const Program& program,
                                 const std::string& entry,
                                 const std::vector<Value>& args,
                                 const EcvProfile& profile = {}) {
  // Reference #1: the tree-walking interpreter (no lowered form, no
  // analytic engine — pure enumeration fold).
  EvalOptions tree_options;
  tree_options.engine = EvalEngine::kTreeWalk;
  Evaluator tree(program, tree_options);
  const auto ref = tree.EvalCertified(entry, args, profile);

  // References #2 and #3: the lowered fast path and the register bytecode
  // VM in kEnumerate mode must agree with the tree walk bit for bit (the
  // pre-existing parity contract, rechecked here through the certified
  // surface). Errors must match code and message too.
  for (const EvalEngine engine :
       {EvalEngine::kFastPath, EvalEngine::kBytecode}) {
    SCOPED_TRACE(engine == EvalEngine::kFastPath ? "fastpath" : "bytecode");
    EvalOptions engine_options;
    engine_options.engine = engine;
    Evaluator lowered(program, engine_options);
    const auto lowered_ref = lowered.EvalCertified(entry, args, profile);
    ASSERT_EQ(lowered_ref.ok(), ref.ok())
        << "lowered: " << lowered_ref.status().ToString()
        << "\ntree: " << ref.status().ToString();
    if (ref.ok()) {
      ExpectExactBitIdentity(*ref, *lowered_ref);
    } else {
      EXPECT_EQ(lowered_ref.status().code(), ref.status().code());
      EXPECT_EQ(lowered_ref.status().message(), ref.status().message());
    }
  }

  for (const ModeCase& mode : kModes) {
    SCOPED_TRACE(mode.name);
    Evaluator analytic(program, ModeOptions(mode));
    const auto got = analytic.EvalCertified(entry, args, profile);
    if (!ref.ok() && ref.status().code() == StatusCode::kResourceExhausted &&
        mode.mode != DistMode::kAnalyticExact && got.ok()) {
      // The bounded/moments engines never enumerate assignments, so they
      // may legitimately answer a query whose enumeration exceeds
      // max_paths — that is their reason to exist. With no exact reference
      // available, check internal soundness: the certified mean must be
      // finite and lie inside the certified support envelope.
      EXPECT_TRUE(std::isfinite(got->mean));
      EXPECT_GE(got->mean_error_bound, 0.0);
      EXPECT_GE(got->mean, got->min_joules - got->mean_error_bound - 1e-12);
      EXPECT_LE(got->mean, got->max_joules + got->mean_error_bound + 1e-12);
      continue;
    }
    ASSERT_EQ(got.ok(), ref.ok())
        << "analytic: " << got.status().ToString()
        << "\nreference: " << ref.status().ToString();
    if (!ref.ok()) {
      // Error parity: same code, same message, regardless of engine. For
      // kAnalyticExact this includes the max_paths budget: exact mode may
      // never silently answer a query enumeration would reject.
      EXPECT_EQ(got.status().code(), ref.status().code());
      EXPECT_EQ(got.status().message(), ref.status().message());
      continue;
    }
    if (mode.mode == DistMode::kAnalyticExact) {
      // Exact mode must be exact however it got there (analytic collapse or
      // enumeration fallback).
      ExpectExactBitIdentity(*ref, *got);
      continue;
    }
    if (got->exact) {
      // The bounded/moments engines fell back (or proved exactness); then
      // the full bit-identity contract applies.
      ExpectExactBitIdentity(*ref, *got);
    } else {
      ExpectBoundedContainment(*ref, *got);
      if (mode.mode == DistMode::kAnalyticMoments) {
        EXPECT_FALSE(got->has_distribution);
      }
    }
  }
}

TEST(DifferentialTest, ParityCorpus) {
  for (const parity::ParityCase& c : parity::kParityCorpus) {
    SCOPED_TRACE(c.name);
    const Program p = MustParse(c.source);
    ExpectDifferentialAgreement(p, c.entry, NumberArgs(c.args));
  }
}

TEST(DifferentialTest, ParityCorpusWithProfileOverride) {
  const Program p = MustParse(parity::kProfileOverrideSource);
  EcvProfile profile;
  ASSERT_TRUE(profile
                  .Set("mode", {{Value::Bool(true), 0.2},
                                {Value::Bool(false), 0.8}})
                  .ok());
  ExpectDifferentialAgreement(p, "f", {}, profile);
}

TEST(DifferentialTest, ErrorCorpusParity) {
  for (const parity::ParityCase& c : parity::kErrorCorpus) {
    SCOPED_TRACE(c.name);
    const Program p = MustParse(c.source);
    ExpectDifferentialAgreement(p, c.entry, NumberArgs(c.args));
  }
}

TEST(DifferentialTest, AnalyticEngineActuallyEngages) {
  // Guard against the harness silently passing because every mode fell back
  // to enumeration: on an analytic-shaped program the exact and bounded
  // engines must answer analytically.
  const Program p = MustParse(parity::kAccumulatorChainSource);
  for (DistMode mode :
       {DistMode::kAnalyticExact, DistMode::kAnalyticBounded,
        DistMode::kAnalyticMoments}) {
    EvalOptions options;
    options.dist_mode = mode;
    Evaluator eval(p, options);
    auto cd = eval.EvalCertified("acc_chain", {Value::Number(6.0)}, {});
    ASSERT_TRUE(cd.ok()) << cd.status().ToString();
    EXPECT_EQ(eval.analytic_hits(), 1u) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(eval.analytic_fallbacks(), 0u)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(DifferentialTest, MaxPathsBudgetParity) {
  // The analytic exact engine must reproduce the enumeration budget error
  // (same code, same message) instead of silently answering a query the
  // enumeration engine would reject.
  Rng rng(0xbead);
  const Program p = MustParse(deepgen::DeepProgram(rng, 12, /*friendly=*/true));
  EvalOptions tight;
  tight.max_paths = 64;
  Evaluator reference(p, tight);
  const auto ref = reference.EvalCertified("deep", {Value::Number(2.0)}, {});
  ASSERT_FALSE(ref.ok());
  EvalOptions analytic_tight = tight;
  analytic_tight.dist_mode = DistMode::kAnalyticExact;
  Evaluator analytic(p, analytic_tight);
  const auto got = analytic.EvalCertified("deep", {Value::Number(2.0)}, {});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ref.status().code());
  EXPECT_EQ(got.status().message(), ref.status().message());
}

class DeepDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepDifferentialTest, RandomDeepPrograms) {
  Rng rng(0xd1ff + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const int depth = 4 + static_cast<int>(rng.UniformInt(0, 8));
    const bool friendly = rng.Bernoulli(0.5);
    const std::string source = deepgen::DeepProgram(rng, depth, friendly);
    SCOPED_TRACE("depth=" + std::to_string(depth) +
                 (friendly ? " friendly\n" : " mixed\n") + source);
    const Program p = MustParse(source);
    ExpectDifferentialAgreement(p, "deep", {Value::Number(3.0)});
  }
}

TEST_P(DeepDifferentialTest, Depth14FriendlyPrograms) {
  // The deepest tier the issue calls out: ~2^14+ assignments, where the
  // analytic engines do the collapsing and enumeration is the slow referee.
  Rng rng(0x14d1 + static_cast<uint64_t>(GetParam()));
  const std::string source = deepgen::DeepProgram(rng, 14, /*friendly=*/true,
                                                  /*binary_only=*/true);
  SCOPED_TRACE(source);
  const Program p = MustParse(source);
  ExpectDifferentialAgreement(p, "deep", {Value::Number(2.0)});
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepDifferentialTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace eclarity
