// Unit and property tests for src/dist.

#include <cmath>

#include <gtest/gtest.h>

#include "src/dist/distribution.h"
#include "src/util/rng.h"

namespace eclarity {
namespace {

TEST(DistributionTest, PointMass) {
  const Distribution d = Distribution::PointMass(5.0);
  EXPECT_TRUE(d.IsValid());
  EXPECT_EQ(d.SupportSize(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.MinValue(), 5.0);
  EXPECT_DOUBLE_EQ(d.MaxValue(), 5.0);
}

TEST(DistributionTest, BernoulliValuesMoments) {
  const Distribution d = Distribution::BernoulliValues(0.25, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.25 * 10.0 + 0.75 * 2.0);
  EXPECT_NEAR(d.Variance(), 0.25 * 0.75 * 64.0, 1e-12);
}

TEST(DistributionTest, BernoulliDegenerateProbabilityCollapses) {
  EXPECT_EQ(Distribution::BernoulliValues(1.0, 7.0, 3.0).SupportSize(), 1u);
  EXPECT_EQ(Distribution::BernoulliValues(0.0, 7.0, 3.0).Mean(), 3.0);
}

TEST(DistributionTest, CategoricalNormalises) {
  auto d = Distribution::Categorical({{1.0, 2.0}, {2.0, 6.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Cdf(1.0), 0.25, 1e-12);
  EXPECT_NEAR(d->Cdf(2.0), 1.0, 1e-12);
}

TEST(DistributionTest, CategoricalMergesDuplicateValues) {
  auto d = Distribution::Categorical({{1.0, 0.5}, {1.0, 0.5}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->SupportSize(), 1u);
}

TEST(DistributionTest, CategoricalRejectsBadInput) {
  EXPECT_FALSE(Distribution::Categorical({}).ok());
  EXPECT_FALSE(Distribution::Categorical({{1.0, -0.5}}).ok());
  EXPECT_FALSE(Distribution::Categorical({{1.0, 0.0}}).ok());
  const double nan = std::nan("");
  EXPECT_FALSE(Distribution::Categorical({{nan, 1.0}}).ok());
}

TEST(DistributionTest, FromSamples) {
  auto d = Distribution::FromSamples({1.0, 2.0, 2.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->SupportSize(), 3u);
  EXPECT_DOUBLE_EQ(d->Mean(), 2.0);
  EXPECT_FALSE(Distribution::FromSamples({}).ok());
}

TEST(DistributionTest, FromSamplesBinnedPreservesMean) {
  std::vector<double> samples;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(rng.Normal(50.0, 10.0));
  }
  auto d = Distribution::FromSamplesBinned(samples, 64);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(d->SupportSize(), 64u);
  // Mass-weighted bin means preserve the sample mean exactly.
  double expected = 0.0;
  for (double s : samples) {
    expected += s;
  }
  expected /= static_cast<double>(samples.size());
  EXPECT_NEAR(d->Mean(), expected, 1e-9);
}

TEST(DistributionTest, CdfAndQuantileAreInverse) {
  auto d = Distribution::Categorical({{1.0, 0.2}, {2.0, 0.3}, {3.0, 0.5}});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->Quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(d->Quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(d->Quantile(0.35), 2.0);
  EXPECT_DOUBLE_EQ(d->Quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(d->Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d->Cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d->Cdf(10.0), 1.0);
}

TEST(DistributionTest, MassInRange) {
  auto d = Distribution::Categorical({{1.0, 0.2}, {2.0, 0.3}, {3.0, 0.5}});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->MassInRange(1.5, 3.0), 0.8);
  EXPECT_DOUBLE_EQ(d->MassInRange(0.0, 0.5), 0.0);
}

TEST(DistributionTest, AffineTransform) {
  const Distribution d = Distribution::BernoulliValues(0.5, 1.0, 3.0);
  const Distribution t = d.Affine(2.0, 10.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 2.0 * d.Mean() + 10.0);
  EXPECT_DOUBLE_EQ(t.MinValue(), 12.0);
  EXPECT_DOUBLE_EQ(t.MaxValue(), 16.0);
}

TEST(DistributionTest, ConvolutionMeansAdd) {
  const Distribution a = Distribution::BernoulliValues(0.5, 0.0, 1.0);
  const Distribution b = Distribution::BernoulliValues(0.25, 0.0, 4.0);
  const Distribution sum = a.Convolve(b);
  EXPECT_NEAR(sum.Mean(), a.Mean() + b.Mean(), 1e-12);
  EXPECT_NEAR(sum.Variance(), a.Variance() + b.Variance(), 1e-12);
}

TEST(DistributionTest, ConvolutionChainBoundsSupport) {
  Distribution acc = Distribution::PointMass(0.0);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    // Irregular three-point summand so supports do not collapse.
    auto step = Distribution::Categorical(
        {{0.0, 0.5}, {1.0 + 0.01 * i, 0.3}, {3.0 + 0.001 * i, 0.2}});
    ASSERT_TRUE(step.ok());
    acc = acc.Convolve(*step, /*max_support=*/512);
    EXPECT_LE(acc.SupportSize(), 512u);
  }
  EXPECT_TRUE(acc.IsValid());
}

TEST(DistributionTest, MixtureWeightsApplied) {
  const Distribution a = Distribution::PointMass(0.0);
  const Distribution b = Distribution::PointMass(10.0);
  auto mix = Distribution::Mixture({a, b}, {3.0, 1.0});
  ASSERT_TRUE(mix.ok());
  EXPECT_NEAR(mix->Mean(), 2.5, 1e-12);
}

TEST(DistributionTest, MixtureRejectsBadInput) {
  const Distribution a = Distribution::PointMass(0.0);
  EXPECT_FALSE(Distribution::Mixture({a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Distribution::Mixture({}, {}).ok());
  EXPECT_FALSE(Distribution::Mixture({a}, {-1.0}).ok());
  EXPECT_FALSE(Distribution::Mixture({a}, {0.0}).ok());
}

TEST(DistributionTest, CompactPreservesMeanAndMass) {
  std::vector<Atom> atoms;
  for (int i = 0; i < 1000; ++i) {
    atoms.push_back({static_cast<double>(i), 1.0});
  }
  auto d = Distribution::Categorical(std::move(atoms));
  ASSERT_TRUE(d.ok());
  const double mean_before = d->Mean();
  const Distribution compacted = d->Compact(50);
  EXPECT_LE(compacted.SupportSize(), 50u);
  EXPECT_NEAR(compacted.Mean(), mean_before, 1e-9);
  double total = 0.0;
  for (const Atom& a : compacted.atoms()) {
    total += a.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DistributionTest, CompactWithToleranceMergesNeighbours) {
  auto d = Distribution::Categorical(
      {{1.0, 0.25}, {1.0005, 0.25}, {5.0, 0.5}});
  ASSERT_TRUE(d.ok());
  const Distribution compacted = d->Compact(10, /*tolerance=*/0.01);
  EXPECT_EQ(compacted.SupportSize(), 2u);
}

TEST(DistributionTest, SamplingMatchesMass) {
  auto d = Distribution::Categorical({{1.0, 0.7}, {2.0, 0.3}});
  ASSERT_TRUE(d.ok());
  Rng rng(11);
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (d->Sample(rng) == 1.0) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.7, 0.02);
}

TEST(DistributionTest, Wasserstein1OfShiftedPointMasses) {
  const Distribution a = Distribution::PointMass(0.0);
  const Distribution b = Distribution::PointMass(3.0);
  EXPECT_NEAR(Distribution::Wasserstein1(a, b), 3.0, 1e-12);
  EXPECT_NEAR(Distribution::Wasserstein1(a, a), 0.0, 1e-12);
}

TEST(DistributionTest, Wasserstein1IsSymmetric) {
  auto a = Distribution::Categorical({{0.0, 0.5}, {2.0, 0.5}});
  auto b = Distribution::Categorical({{1.0, 0.25}, {3.0, 0.75}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(Distribution::Wasserstein1(*a, *b),
              Distribution::Wasserstein1(*b, *a), 1e-12);
}

TEST(DistributionTest, KolmogorovSmirnovBounds) {
  const Distribution a = Distribution::PointMass(0.0);
  const Distribution b = Distribution::PointMass(1.0);
  EXPECT_NEAR(Distribution::KolmogorovSmirnov(a, b), 1.0, 1e-12);
  EXPECT_NEAR(Distribution::KolmogorovSmirnov(a, a), 0.0, 1e-12);
}

// Property sweep: affine + convolution identities across parameterisations.
class DistributionPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(DistributionPropertyTest, ConvolutionWithPointMassIsShift) {
  const double shift = GetParam();
  auto d = Distribution::Categorical({{1.0, 0.3}, {4.0, 0.7}});
  ASSERT_TRUE(d.ok());
  const Distribution shifted = d->Convolve(Distribution::PointMass(shift));
  EXPECT_NEAR(shifted.Mean(), d->Mean() + shift, 1e-12);
  EXPECT_NEAR(shifted.Variance(), d->Variance(), 1e-12);
}

TEST_P(DistributionPropertyTest, QuantileIsMonotone) {
  const double p = GetParam();
  auto d = Distribution::Categorical(
      {{0.0, 0.1}, {1.0, 0.2}, {2.0, 0.3}, {5.0, 0.4}});
  ASSERT_TRUE(d.ok());
  const double q = std::fabs(p) / 10.0;  // in [0, 1] for our params
  if (q <= 0.9) {
    EXPECT_LE(d->Quantile(q), d->Quantile(q + 0.1));
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, DistributionPropertyTest,
                         ::testing::Values(-5.0, -1.0, 0.0, 0.5, 2.0, 9.0));

}  // namespace
}  // namespace eclarity
