// Error-path and edge-case tests for the evaluator: every malformed
// runtime situation must surface as a typed Status with a useful message,
// never as a crash or a silent wrong answer.

#include <gtest/gtest.h>

#include "src/eval/builtins.h"
#include "src/eval/interp.h"
#include "src/eval/pure_expr.h"
#include "src/lang/parser.h"

namespace eclarity {
namespace {

Program MustParse(const char* source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Result<Value> Run1(const char* source, const char* entry, double arg) {
  static std::vector<std::unique_ptr<Program>> keep_alive;
  keep_alive.push_back(std::make_unique<Program>(MustParse(source)));
  Evaluator eval(*keep_alive.back());
  Rng rng(1);
  return eval.EvalSampled(entry, {Value::Number(arg)}, {}, rng);
}

// --- Runtime type errors -------------------------------------------------------

TEST(EvalEdgeTest, ConditionMustBeBool) {
  auto v = Run1("interface f(x) { if (x) { return 1J; } return 2J; }", "f", 1);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("if condition"), std::string::npos);
}

TEST(EvalEdgeTest, LoopBoundsMustBeNumbers) {
  auto v = Run1(
      "interface f(x) { let mut t = 0J; for i in 0..(x > 0) { t = t + 1J; } "
      "return t; }",
      "f", 1);
  EXPECT_FALSE(v.ok());
}

TEST(EvalEdgeTest, ReturnedNumberFailsDistribution) {
  // The dynamic type system allows returning a number; converting to a
  // distribution must fail cleanly.
  const Program p = MustParse("interface f(x) { return x * 2; }");
  Evaluator eval(p);
  auto dist = eval.EvalDistribution("f", {Value::Number(1.0)}, {});
  ASSERT_FALSE(dist.ok());
  EXPECT_NE(dist.status().message().find("expected energy"),
            std::string::npos);
}

TEST(EvalEdgeTest, MixedEnergyNumberAdditionRejected) {
  auto v = Run1("interface f(x) { return x + 1J; }", "f", 2);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("'+'"), std::string::npos);
}

// --- ECV runtime validation -----------------------------------------------------

TEST(EvalEdgeTest, BernoulliProbabilityOutOfRange) {
  auto v = Run1(
      "interface f(p) { ecv e ~ bernoulli(p); return e ? 1J : 2J; }", "f",
      1.5);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("out of [0,1]"), std::string::npos);
}

TEST(EvalEdgeTest, UniformIntInvertedBounds) {
  auto v = Run1(
      "interface f(x) { ecv e ~ uniform_int(5, 2); return e * 1J; }", "f", 0);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("inverted"), std::string::npos);
}

TEST(EvalEdgeTest, UniformIntSupportBudget) {
  const Program p = MustParse(
      "interface f(x) { ecv e ~ uniform_int(0, 100000); return e * 1J; }");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalEdgeTest, CategoricalZeroMassRejected) {
  auto v = Run1(
      "interface f(x) { ecv e ~ categorical(1: 0, 2: 0); return e * 1J; }",
      "f", 0);
  ASSERT_FALSE(v.ok());
}

TEST(EvalEdgeTest, EcvParamsMayDependOnInputs) {
  // Paper-adjacent: hit rate that depends on a parameter (cache size).
  const Program p = MustParse(R"(
interface f(cache_frac) {
  ecv hit ~ bernoulli(cache_frac);
  return hit ? 1mJ : 3mJ;
}
)");
  Evaluator eval(p);
  auto low = eval.ExpectedEnergy("f", {Value::Number(0.1)}, {});
  auto high = eval.ExpectedEnergy("f", {Value::Number(0.9)}, {});
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(low->joules(), high->joules());
}

// --- Builtin error paths ---------------------------------------------------------

TEST(EvalEdgeTest, BuiltinErrorPaths) {
  const std::string ctx = "t";
  // clamp with inverted bounds.
  EXPECT_FALSE(ApplyBuiltin("clamp",
                            {Value::Number(1), Value::Number(5),
                             Value::Number(2)},
                            {}, ctx)
                   .ok());
  // log of a non-positive value -> non-finite.
  EXPECT_FALSE(ApplyBuiltin("log", {Value::Number(-1)}, {}, ctx).ok());
  EXPECT_FALSE(ApplyBuiltin("sqrt", {Value::Number(-4)}, {}, ctx).ok());
  // pow overflow.
  EXPECT_FALSE(
      ApplyBuiltin("pow", {Value::Number(1e300), Value::Number(10)}, {}, ctx)
          .ok());
  // au without its unit-name string.
  EXPECT_FALSE(ApplyBuiltin("au", {Value::Number(0)}, {}, ctx).ok());
  // unknown builtin name.
  EXPECT_FALSE(ApplyBuiltin("warp", {Value::Number(0)}, {}, ctx).ok());
  // min over mixed kinds.
  EXPECT_FALSE(
      ApplyBuiltin("min", {Value::Number(1), Value::Joules(1)}, {}, ctx).ok());
  // abs of an abstract energy (not resolvable without calibration).
  EXPECT_FALSE(
      ApplyBuiltin("abs", {Value::EnergyValue(AbstractEnergy::Unit("x"))}, {},
                   ctx)
          .ok());
}

TEST(EvalEdgeTest, MinMaxOnConcreteEnergies) {
  auto lo = ApplyBuiltin("min", {Value::Joules(2), Value::Joules(5)}, {}, "t");
  auto hi = ApplyBuiltin("max", {Value::Joules(2), Value::Joules(5)}, {}, "t");
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_DOUBLE_EQ(lo->energy().concrete().joules(), 2.0);
  EXPECT_DOUBLE_EQ(hi->energy().concrete().joules(), 5.0);
}

// --- Pure-expression evaluator -----------------------------------------------------

TEST(EvalEdgeTest, PureExprBasics) {
  auto e = ParseExpression("min(a, 3) * 2 + (a > 1 ? 1 : 0)");
  ASSERT_TRUE(e.ok());
  std::map<std::string, Value> env = {{"a", Value::Number(5.0)}};
  auto v = EvalPureExpr(**e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number(), 7.0);
}

TEST(EvalEdgeTest, PureExprRejectsInterfaceCalls) {
  auto e = ParseExpression("E_hw(3)");
  ASSERT_TRUE(e.ok());
  std::map<std::string, Value> env;
  auto v = EvalPureExpr(**e, env);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("cannot call interface"),
            std::string::npos);
}

TEST(EvalEdgeTest, PureExprUndefinedName) {
  auto e = ParseExpression("missing + 1");
  ASSERT_TRUE(e.ok());
  std::map<std::string, Value> env;
  EXPECT_EQ(EvalPureExpr(**e, env).status().code(), StatusCode::kNotFound);
}

// --- Profile interactions -------------------------------------------------------

TEST(EvalEdgeTest, ProfileOverrideWithWrongTypeSurfacesAtUse) {
  // Pinning a boolean ECV to a number makes the branch condition fail.
  const Program p = MustParse(R"(
interface f(x) {
  ecv hit ~ bernoulli(0.5);
  if (hit) { return 1J; }
  return 2J;
}
)");
  Evaluator eval(p);
  EcvProfile profile;
  profile.SetFixed("hit", Value::Number(1.0));
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(0.0)}, profile, rng);
  ASSERT_FALSE(v.ok());
}

TEST(EvalEdgeTest, ProfileOverrideCanWidenSupport) {
  // A profile can replace a Bernoulli with a three-way categorical.
  const Program p = MustParse(R"(
interface f() {
  ecv mode ~ bernoulli(0.5);
  return mode ? 1mJ : 2mJ;
}
)");
  Evaluator eval(p);
  EcvProfile profile;
  ASSERT_TRUE(profile
                  .Set("mode", {{Value::Bool(true), 0.2},
                                {Value::Bool(false), 0.8}})
                  .ok());
  auto dist = eval.EvalDistribution("f", {}, profile);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Mean(), 0.2 * 1e-3 + 0.8 * 2e-3, 1e-12);
}

// --- Budget exhaustion, on both engines ------------------------------------------

EvalOptions WithEngine(EvalEngine engine) {
  EvalOptions options;
  options.engine = engine;
  return options;
}

TEST(EvalEdgeTest, MaxPathsExhaustedOnAllEngines) {
  // 12 Bernoullis -> 4096 assignments, over a 100-path budget.
  std::string source = "interface f(x) {\n  let mut acc = 0J;\n";
  for (int i = 0; i < 12; ++i) {
    source += "  ecv b" + std::to_string(i) + " ~ bernoulli(0.5);\n";
    source += "  if (b" + std::to_string(i) + ") { acc = acc + 1mJ; }\n";
  }
  source += "  return acc;\n}\n";
  const Program p = MustParse(source.c_str());
  for (EvalEngine engine :
       {EvalEngine::kFastPath, EvalEngine::kTreeWalk, EvalEngine::kBytecode}) {
    EvalOptions options = WithEngine(engine);
    options.max_paths = 100;
    Evaluator eval(p, options);
    auto outcomes = eval.Enumerate("f", {Value::Number(0.0)}, {});
    ASSERT_FALSE(outcomes.ok());
    EXPECT_EQ(outcomes.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EvalEdgeTest, MaxCallDepthExhaustedOnAllEngines) {
  const Program p = MustParse("interface f(x) { return f(x); }");
  for (EvalEngine engine :
       {EvalEngine::kFastPath, EvalEngine::kTreeWalk, EvalEngine::kBytecode}) {
    EvalOptions options = WithEngine(engine);
    options.max_call_depth = 8;
    Evaluator eval(p, options);
    Rng rng(1);
    auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EvalEdgeTest, MaxEcvSupportExhaustedOnAllEngines) {
  const Program p = MustParse(
      "interface f(x) { ecv e ~ uniform_int(0, 10); return e * 1J; }");
  for (EvalEngine engine :
       {EvalEngine::kFastPath, EvalEngine::kTreeWalk, EvalEngine::kBytecode}) {
    EvalOptions options = WithEngine(engine);
    options.max_ecv_support = 4;
    Evaluator eval(p, options);
    Rng rng(1);
    auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EvalEdgeTest, MaxStepsExhaustedOnAllEngines) {
  const Program p = MustParse(
      "interface f(x) { let mut t = 0J; for i in 0..100000 { t = t + 1J; } "
      "return t; }");
  for (EvalEngine engine :
       {EvalEngine::kFastPath, EvalEngine::kTreeWalk, EvalEngine::kBytecode}) {
    EvalOptions options = WithEngine(engine);
    options.max_steps = 50;
    Evaluator eval(p, options);
    Rng rng(1);
    auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  }
}

// --- Enumeration cache ------------------------------------------------------------

TEST(EvalEdgeTest, CachedEnumerationMatchesColdPath) {
  const Program p = MustParse(R"(
interface f(x) {
  ecv hit ~ bernoulli(0.5);
  return hit ? 1mJ * x : 3mJ * x;
}
)");
  Evaluator cached(p);  // default engine, cache enabled
  EvalOptions cold_options;
  cold_options.enum_cache_capacity = 0;
  Evaluator cold(p, cold_options);

  EcvProfile biased;
  ASSERT_TRUE(biased
                  .Set("hit", {{Value::Bool(true), 0.9},
                               {Value::Bool(false), 0.1}})
                  .ok());
  const std::vector<Value> args = {Value::Number(2.0)};

  const EcvProfile base;
  for (const EcvProfile* profile :
       {&base, static_cast<const EcvProfile*>(&biased)}) {
    const EcvProfile& prof = *profile;
    auto first = cached.Enumerate("f", args, prof);
    auto second = cached.Enumerate("f", args, prof);  // served from cache
    auto reference = cold.Enumerate("f", args, prof);
    ASSERT_TRUE(first.ok() && second.ok() && reference.ok());
    ASSERT_EQ(second->size(), reference->size());
    for (size_t i = 0; i < second->size(); ++i) {
      EXPECT_TRUE((*second)[i].value == (*reference)[i].value);
      EXPECT_EQ((*second)[i].probability, (*reference)[i].probability);
      EXPECT_EQ((*second)[i].ecv_assignments, (*reference)[i].ecv_assignments);
      EXPECT_TRUE((*first)[i].value == (*second)[i].value);
    }
  }
  // Two distinct keys (base + biased profile), each enumerated twice.
  EXPECT_EQ(cached.enum_cache_misses(), 2u);
  EXPECT_EQ(cached.enum_cache_hits(), 2u);
  EXPECT_EQ(cold.enum_cache_hits(), 0u);
}

TEST(EvalEdgeTest, CacheKeyDistinguishesArguments) {
  const Program p = MustParse(R"(
interface f(x) {
  ecv hit ~ bernoulli(0.5);
  return hit ? 1mJ * x : 3mJ * x;
}
)");
  Evaluator eval(p);
  auto a = eval.ExpectedEnergy("f", {Value::Number(1.0)}, {});
  auto b = eval.ExpectedEnergy("f", {Value::Number(2.0)}, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->joules(), b->joules());
  EXPECT_EQ(eval.enum_cache_misses(), 2u);
}

}  // namespace
}  // namespace eclarity
