// Tests for the EIL interpreter: sampled, exact-enumeration, distribution
// and expectation evaluation, including the paper's Fig. 1 interface.

#include <cmath>

#include <gtest/gtest.h>

#include "src/eval/interp.h"
#include "src/lang/parser.h"

namespace eclarity {
namespace {

Program MustParse(const char* source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// --- Deterministic evaluation ---------------------------------------------------

TEST(EvalTest, SimpleArithmetic) {
  const Program p = MustParse(
      "interface f(n) { return (2 * n + 1) * 1mJ; }");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(10.0)}, {}, rng);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_NEAR(v->energy().concrete().millijoules(), 21.0, 1e-12);
}

TEST(EvalTest, ConstsResolve) {
  const Program p = MustParse(R"(
const base = 5mJ;
interface f(n) { return base * n; }
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(3.0)}, {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->energy().concrete().millijoules(), 15.0, 1e-12);
}

TEST(EvalTest, ForLoopAccumulates) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    total = total + (i + 1) * 1mJ;
  }
  return total;
}
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(4.0)}, {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->energy().concrete().millijoules(), 10.0, 1e-12);  // 1+2+3+4
}

TEST(EvalTest, NestedCalls) {
  const Program p = MustParse(R"(
interface inner(n) { return n * 2mJ; }
interface outer(n) { return inner(n) + inner(n + 1); }
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("outer", {Value::Number(1.0)}, {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->energy().concrete().millijoules(), 6.0, 1e-12);
}

TEST(EvalTest, RecursionWorksWithinDepthLimit) {
  // E(n) = n * 1mJ via recursion.
  const Program p = MustParse(R"(
interface f(n) {
  if (n <= 0) { return 0J; }
  return 1mJ + f(n - 1);
}
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(10.0)}, {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->energy().concrete().millijoules(), 10.0, 1e-12);
}

TEST(EvalTest, RecursionDepthLimitEnforced) {
  const Program p = MustParse(R"(
interface f(n) { return 1mJ + f(n + 1); }
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, StepBudgetEnforced) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n { total = total + 1pJ; }
  return total;
}
)");
  EvalOptions options;
  options.max_steps = 100;
  Evaluator eval(p, options);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(1000000.0)}, {}, rng);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, ArityMismatchRejected) {
  const Program p = MustParse("interface f(a, b) { return 1J; }");
  Evaluator eval(p);
  Rng rng(1);
  EXPECT_FALSE(eval.EvalSampled("f", {Value::Number(1.0)}, {}, rng).ok());
}

TEST(EvalTest, UnknownInterfaceRejected) {
  const Program p = MustParse("interface f(a) { return 1J; }");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("nope", {Value::Number(1.0)}, {}, rng);
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, BuiltinsWork) {
  const Program p = MustParse(R"(
interface f(x) {
  let a = min(x, 10);
  let b = max(x, 2);
  let c = clamp(x, 0, 5);
  let d = floor(x / 2) + ceil(x / 2);
  return (a + b + c + d) * 1mJ;
}
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("f", {Value::Number(7.0)}, {}, rng);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  // a=7 b=7 c=5 d=3+4=7 -> 26.
  EXPECT_NEAR(v->energy().concrete().millijoules(), 26.0, 1e-12);
}

TEST(EvalTest, ShortCircuitAvoidsRhsError) {
  const Program p = MustParse(R"(
interface f(x) {
  if (x > 0 && 1 / x > 0.01) { return 1J; }
  return 2J;
}
)");
  Evaluator eval(p);
  Rng rng(1);
  // x == 0 would divide by zero if && were strict.
  auto v = eval.EvalSampled("f", {Value::Number(0.0)}, {}, rng);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->energy().concrete().joules(), 2.0);
}

// --- ECVs, enumeration, distributions ----------------------------------------

constexpr char kCacheSource[] = R"(
interface E_cache_lookup(response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 5mJ * response_len;
  } else {
    return 100mJ * response_len;
  }
}
)";

TEST(EvalTest, EnumerateBernoulliEcv) {
  const Program p = MustParse(kCacheSource);
  Evaluator eval(p);
  auto outcomes = eval.Enumerate("E_cache_lookup", {Value::Number(2.0)}, {});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 2u);
  double total_prob = 0.0;
  for (const auto& o : *outcomes) {
    total_prob += o.probability;
    ASSERT_EQ(o.ecv_assignments.size(), 1u);
    EXPECT_EQ(o.ecv_assignments[0].first, "E_cache_lookup.local_cache_hit");
  }
  EXPECT_NEAR(total_prob, 1.0, 1e-12);
}

TEST(EvalTest, DistributionMatchesHandComputation) {
  const Program p = MustParse(kCacheSource);
  Evaluator eval(p);
  auto dist = eval.EvalDistribution("E_cache_lookup", {Value::Number(1.0)}, {});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(dist->SupportSize(), 2u);
  EXPECT_NEAR(dist->Mean(), 0.8 * 0.005 + 0.2 * 0.1, 1e-12);
  EXPECT_NEAR(dist->MinValue(), 0.005, 1e-12);
  EXPECT_NEAR(dist->MaxValue(), 0.1, 1e-12);
}

TEST(EvalTest, EcvProfileOverridesDeclaredDistribution) {
  const Program p = MustParse(kCacheSource);
  Evaluator eval(p);
  EcvProfile profile;
  profile.SetFixed("local_cache_hit", Value::Bool(true));
  auto dist = eval.EvalDistribution("E_cache_lookup", {Value::Number(1.0)},
                                    profile);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->SupportSize(), 1u);
  EXPECT_NEAR(dist->Mean(), 0.005, 1e-12);
}

TEST(EvalTest, QualifiedProfileKeyWinsOverBare) {
  const Program p = MustParse(kCacheSource);
  Evaluator eval(p);
  EcvProfile profile;
  profile.SetBernoulli("local_cache_hit", 0.0);
  profile.SetBernoulli("E_cache_lookup.local_cache_hit", 1.0);
  auto dist = eval.EvalDistribution("E_cache_lookup", {Value::Number(1.0)},
                                    profile);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Mean(), 0.005, 1e-12);  // hit path forced
}

TEST(EvalTest, EcvInsideLoopIsFreshPerIteration) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    ecv hit ~ bernoulli(0.5);
    if (hit) { total = total + 1mJ; }
  }
  return total;
}
)");
  Evaluator eval(p);
  auto outcomes = eval.Enumerate("f", {Value::Number(3.0)}, {});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->size(), 8u);  // 2^3 draws
  auto dist = eval.EvalDistribution("f", {Value::Number(3.0)}, {});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->SupportSize(), 4u);  // binomial(3, .5) on {0,1,2,3} mJ
  EXPECT_NEAR(dist->Mean(), 1.5e-3, 1e-12);
}

TEST(EvalTest, CategoricalAndUniformIntEcvs) {
  const Program p = MustParse(R"(
interface f() {
  ecv mode ~ categorical(1: 0.5, 2: 0.3, 4: 0.2);
  ecv extra ~ uniform_int(0, 3);
  return (mode + extra) * 1mJ;
}
)");
  Evaluator eval(p);
  auto outcomes = eval.Enumerate("f", {}, {});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->size(), 12u);  // 3 * 4
  auto dist = eval.EvalDistribution("f", {}, {});
  ASSERT_TRUE(dist.ok());
  const double mode_mean = 1 * 0.5 + 2 * 0.3 + 4 * 0.2;
  EXPECT_NEAR(dist->Mean(), (mode_mean + 1.5) * 1e-3, 1e-12);
}

TEST(EvalTest, NestedCallEcvsCompose) {
  const Program p = MustParse(R"(
interface leaf() {
  ecv hit ~ bernoulli(0.5);
  return hit ? 1mJ : 3mJ;
}
interface root() {
  return leaf() + leaf();
}
)");
  Evaluator eval(p);
  auto outcomes = eval.Enumerate("root", {}, {});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->size(), 4u);  // independent draws per call
  auto dist = eval.EvalDistribution("root", {}, {});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->SupportSize(), 3u);  // 2, 4, 6 mJ
  EXPECT_NEAR(dist->Mean(), 4e-3, 1e-12);
}

TEST(EvalTest, MaxPathsEnforced) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    ecv hit ~ bernoulli(0.5);
    if (hit) { total = total + 1mJ; }
  }
  return total;
}
)");
  EvalOptions options;
  options.max_paths = 100;
  Evaluator eval(p, options);
  auto outcomes = eval.Enumerate("f", {Value::Number(20.0)}, {});
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, ExpectedEnergyMatchesMonteCarlo) {
  const Program p = MustParse(kCacheSource);
  Evaluator eval(p);
  auto exact = eval.ExpectedEnergy("E_cache_lookup", {Value::Number(4.0)}, {});
  ASSERT_TRUE(exact.ok());
  Rng rng(99);
  auto mc = eval.MonteCarloMean("E_cache_lookup", {Value::Number(4.0)}, {},
                                rng, 20000);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(mc->joules() / exact->joules(), 1.0, 0.05);
}

// --- Abstract units --------------------------------------------------------------

TEST(EvalTest, AbstractUnitsNeedCalibration) {
  const Program p = MustParse(R"(
interface E_relu(n) { return au("relu", n); }
)");
  Evaluator eval(p);
  auto dist = eval.EvalDistribution("E_relu", {Value::Number(2.0)}, {});
  EXPECT_FALSE(dist.ok());
  EXPECT_EQ(dist.status().code(), StatusCode::kFailedPrecondition);

  EnergyCalibration cal;
  cal.Bind("relu", Energy::Microjoules(3.0));
  auto resolved =
      eval.EvalDistribution("E_relu", {Value::Number(2.0)}, {}, &cal);
  ASSERT_TRUE(resolved.ok());
  EXPECT_NEAR(resolved->Mean(), 6e-6, 1e-15);
}

TEST(EvalTest, AbstractUnitsComposeAcrossCalls) {
  const Program p = MustParse(R"(
interface E_conv2d(n) { return au("conv2d", n); }
interface E_relu(n) { return au("relu", n); }
interface E_layer(n) { return E_conv2d(n) + 2 * E_relu(n); }
)");
  Evaluator eval(p);
  Rng rng(1);
  auto v = eval.EvalSampled("E_layer", {Value::Number(3.0)}, {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->energy().Coefficient("conv2d"), 3.0);
  EXPECT_DOUBLE_EQ(v->energy().Coefficient("relu"), 6.0);
}

// --- Fig. 1 end-to-end -------------------------------------------------------------

constexpr char kFig1Source[] = R"(
const max_response_len = 1024;

interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}

interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 0.001mJ * response_len;
  } else {
    return 0.1mJ * response_len;
  }
}

interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * E_conv2d(image_size - n_zeros) +
         8 * E_relu(n_embedding) +
         16 * E_mlp(n_embedding);
}

interface E_conv2d(n) { return n * 20nJ; }
interface E_relu(n) { return n * 0.1nJ; }
interface E_mlp(n) { return n * 1.5nJ; }
)";

TEST(EvalTest, Fig1DistributionStructure) {
  const Program p = MustParse(kFig1Source);
  Evaluator eval(p);
  const std::vector<Value> args = {Value::Number(50176.0),  // 224x224 image
                                   Value::Number(10000.0)};
  auto outcomes = eval.Enumerate("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  // request_hit splits; on hit, local_cache_hit splits again; on miss the
  // CNN path draws nothing: 1 (miss) + 2 (hit x cache-hit) = 3 outcomes.
  EXPECT_EQ(outcomes->size(), 3u);
  auto dist = eval.EvalDistribution("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->SupportSize(), 3u);
  // Hand-computed expectation.
  const double cache_hit = 0.001e-3 * 1024;
  const double cache_miss = 0.1e-3 * 1024;
  const double cnn = 8 * (50176.0 - 10000.0) * 20e-9 + 8 * 256 * 0.1e-9 +
                     16 * 256 * 1.5e-9;
  const double expected =
      0.3 * (0.8 * cache_hit + 0.2 * cache_miss) + 0.7 * cnn;
  EXPECT_NEAR(dist->Mean(), expected, 1e-12);
}

TEST(EvalTest, Fig1WorkloadProfileShiftsEnergy) {
  // A workload where every request is a repeat (hot cache) should cost far
  // less than a cold workload — the insight Fig. 1's interface makes visible.
  const Program p = MustParse(kFig1Source);
  Evaluator eval(p);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  EcvProfile hot;
  hot.SetFixed("request_hit", Value::Bool(true));
  hot.SetFixed("local_cache_hit", Value::Bool(true));
  EcvProfile cold;
  cold.SetFixed("request_hit", Value::Bool(false));
  auto hot_energy = eval.ExpectedEnergy("E_ml_webservice_handle", args, hot);
  auto cold_energy = eval.ExpectedEnergy("E_ml_webservice_handle", args, cold);
  ASSERT_TRUE(hot_energy.ok() && cold_energy.ok());
  EXPECT_LT(hot_energy->joules(), cold_energy->joules());
}

// Property sweep: Monte Carlo converges to the exact expectation for varying
// ECV probabilities.
class EvalConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(EvalConvergenceTest, MonteCarloMatchesExact) {
  const double p_hit = GetParam();
  Program program = MustParse(kCacheSource);
  Evaluator eval(program);
  EcvProfile profile;
  profile.SetBernoulli("local_cache_hit", p_hit);
  auto exact =
      eval.ExpectedEnergy("E_cache_lookup", {Value::Number(8.0)}, profile);
  ASSERT_TRUE(exact.ok());
  Rng rng(static_cast<uint64_t>(p_hit * 1000) + 7);
  auto mc = eval.MonteCarloMean("E_cache_lookup", {Value::Number(8.0)},
                                profile, rng, 30000);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(mc->joules(), exact->joules(),
              0.05 * exact->joules() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(HitRates, EvalConvergenceTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace eclarity
