// Tests for the implementation→interface extractor (paper §4.2): MIR
// compilation to EIL, device-state side effects, entry-state ECVs, and the
// central property that extracted interfaces exactly predict the
// implementation's energy (validated against the reference MIR executor).

#include <gtest/gtest.h>

#include "src/extract/empirical.h"
#include "src/extract/extract.h"
#include "src/iface/energy_interface.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace eclarity {
namespace {

// Hardware layer: plain ops plus a state-dependent radio.
constexpr char kHardware[] = R"(
interface E_cpu_op(n) { return n * 1nJ; }
interface E_mem_read(bytes) { return bytes * 0.2nJ; }
interface E_net_send_warm(bytes) { return bytes * 2nJ + 1uJ; }
interface E_net_send_cold(bytes) { return bytes * 2nJ + 800uJ; }
)";

Program Hardware() {
  auto program = ParseProgram(kHardware);
  EXPECT_TRUE(program.ok());
  return std::move(program).value();
}

MirModule SimpleModule() {
  MirModule module;
  module.resource_ops = {
      {"cpu_op", 1, std::nullopt},
      {"mem_read", 1, std::nullopt},
      {"net_send", 1, std::string("radio")},
  };
  return module;
}

ExprPtr ParseE(const char* text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(e).value();
}

TEST(ExtractTest, StraightLineFunction) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "work";
  fn.params = {"n"};
  fn.body.statements.push_back(MirMakeUse("cpu_op", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("n * 10")); return v; }()));
  fn.body.statements.push_back(MirMakeUse("mem_read", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("n * 64")); return v; }()));
  module.functions.push_back(std::move(fn));

  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto iface = EnergyInterface::FromProgram(std::move(*program), "E_work",
                                            {"E_cpu_op", "E_mem_read"});
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto linked = iface->Link(Hardware());
  ASSERT_TRUE(linked.ok());

  for (double n : {1.0, 7.0, 100.0}) {
    std::map<std::string, bool> state;
    auto actual = RunMir(module, "work", {n}, Hardware(), state);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    auto predicted = linked->Expected({Value::Number(n)});
    ASSERT_TRUE(predicted.ok());
    EXPECT_NEAR(predicted->joules(), actual->energy.joules(),
                1e-15 + 1e-9 * actual->energy.joules());
  }
}

TEST(ExtractTest, ControlFlowAndLocals) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "batched";
  fn.params = {"items", "batch"};
  // batches = ceil(items / batch); per batch: cpu_op(batch * 3)
  fn.body.statements.push_back(
      MirMakeAssign("batches", ParseE("ceil(items / batch)")));
  {
    MirBlock body;
    body.statements.push_back(MirMakeUse("cpu_op", []{
      std::vector<ExprPtr> v; v.push_back(ParseE("batch * 3")); return v; }()));
    fn.body.statements.push_back(std::make_unique<MirFor>(
        "i", ParseE("0"), ParseE("batches"), std::move(body)));
  }
  {
    MirBlock then_block;
    then_block.statements.push_back(MirMakeUse("mem_read", []{
      std::vector<ExprPtr> v; v.push_back(ParseE("items * 8")); return v; }()));
    fn.body.statements.push_back(std::make_unique<MirIf>(
        ParseE("items > 50"), std::move(then_block), std::nullopt));
  }
  module.functions.push_back(std::move(fn));

  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto iface = EnergyInterface::FromProgram(std::move(*program), "E_batched",
                                            {"E_cpu_op", "E_mem_read"});
  ASSERT_TRUE(iface.ok());
  auto linked = iface->Link(Hardware());
  ASSERT_TRUE(linked.ok());

  for (double items : {10.0, 50.0, 51.0, 200.0}) {
    std::map<std::string, bool> state;
    auto actual = RunMir(module, "batched", {items, 16.0}, Hardware(), state);
    ASSERT_TRUE(actual.ok());
    auto predicted =
        linked->Expected({Value::Number(items), Value::Number(16.0)});
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
    EXPECT_NEAR(predicted->joules(), actual->energy.joules(),
                1e-15 + 1e-9 * actual->energy.joules())
        << "items=" << items;
  }
}

// The paper's WiFi example: entry radio state becomes an ECV; pinning the
// ECV reproduces the implementation exactly for both environments.
TEST(ExtractTest, EntryStateBecomesEcv) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "upload";
  fn.params = {"bytes"};
  fn.body.statements.push_back(MirMakeUse("net_send", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
  fn.body.statements.push_back(MirMakeUse("net_send", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
  module.functions.push_back(std::move(fn));

  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Both the public and state-explicit variants exist.
  ASSERT_NE(program->FindInterface("E_upload"), nullptr);
  ASSERT_NE(program->FindInterface("E_upload_st"), nullptr);

  auto iface = EnergyInterface::FromProgram(
      program->Clone(), "E_upload",
      {"E_net_send_warm", "E_net_send_cold"});
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto linked = iface->Link(Hardware());
  ASSERT_TRUE(linked.ok());

  // Two outcomes: entry radio on vs off (second send is always warm).
  auto outcomes = linked->Paths({Value::Number(1000.0)});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->size(), 2u);

  for (bool radio_on : {false, true}) {
    std::map<std::string, bool> state = {{"radio", radio_on}};
    auto actual = RunMir(module, "upload", {1000.0}, Hardware(), state);
    ASSERT_TRUE(actual.ok());
    EXPECT_TRUE(state.at("radio"));  // using the radio turned it on

    EcvProfile pinned;
    pinned.SetFixed(EntryStateEcvName("radio"), Value::Bool(radio_on));
    auto predicted = linked->Expected({Value::Number(1000.0)}, pinned);
    ASSERT_TRUE(predicted.ok());
    EXPECT_NEAR(predicted->joules(), actual->energy.joules(),
                1e-15 + 1e-9 * actual->energy.joules())
        << "radio_on=" << radio_on;
  }
}

TEST(ExtractTest, StateSetBeforeUseNeedsNoEcv) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "wake_then_send";
  fn.params = {"bytes"};
  fn.body.statements.push_back(MirMakeState("radio", true));
  fn.body.statements.push_back(MirMakeUse("net_send", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
  module.functions.push_back(std::move(fn));

  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // No ECV: a single deterministic path.
  EXPECT_EQ(program->FindInterface("E_wake_then_send_st"), nullptr);
  auto iface = EnergyInterface::FromProgram(
      std::move(*program), "E_wake_then_send",
      {"E_net_send_warm", "E_net_send_cold"});
  ASSERT_TRUE(iface.ok());
  auto linked = iface->Link(Hardware());
  ASSERT_TRUE(linked.ok());
  auto outcomes = linked->Paths({Value::Number(100.0)});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->size(), 1u);
  // Warm cost: the radio was explicitly woken first.
  EXPECT_NEAR(outcomes->front().value.energy().concrete().joules(),
              100.0 * 2e-9 + 1e-6, 1e-15);
}

// Cross-function composition: the caller wakes the radio, then calls a
// helper whose own public interface would be uncertain — but the composed
// interface must know the radio is on.
TEST(ExtractTest, CallerStateFlowsIntoCallee) {
  MirModule module = SimpleModule();
  {
    MirFunction helper;
    helper.name = "send_chunk";
    helper.params = {"bytes"};
    helper.body.statements.push_back(MirMakeUse("net_send", []{
      std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
    module.functions.push_back(std::move(helper));
  }
  {
    MirFunction caller;
    caller.name = "warm_upload";
    caller.params = {"bytes"};
    caller.body.statements.push_back(MirMakeState("radio", true));
    caller.body.statements.push_back(MirMakeCall("send_chunk", []{
      std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
    module.functions.push_back(std::move(caller));
  }

  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto iface = EnergyInterface::FromProgram(
      std::move(*program), "E_warm_upload",
      {"E_net_send_warm", "E_net_send_cold"});
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto linked = iface->Link(Hardware());
  ASSERT_TRUE(linked.ok());
  // Single path, warm cost — no ECV leaks from the callee.
  auto outcomes = linked->Paths({Value::Number(500.0)});
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 1u);
  EXPECT_NEAR(outcomes->front().value.energy().concrete().joules(),
              500.0 * 2e-9 + 1e-6, 1e-15);
}

TEST(ExtractTest, RecursionRejected) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "loop";
  fn.params = {"n"};
  fn.body.statements.push_back(MirMakeCall("loop", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("n")); return v; }()));
  module.functions.push_back(std::move(fn));
  auto program = ExtractModule(module);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kUnimplemented);
}

TEST(ExtractTest, UndeclaredOpRejected) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "bad";
  fn.params = {};
  fn.body.statements.push_back(MirMakeUse("warp_drive", {}));
  module.functions.push_back(std::move(fn));
  EXPECT_FALSE(ExtractModule(module).ok());
}

TEST(ExtractTest, ExtractedSourceIsReadable) {
  MirModule module = SimpleModule();
  MirFunction fn;
  fn.name = "upload";
  fn.params = {"bytes"};
  fn.body.statements.push_back(MirMakeUse("net_send", []{
    std::vector<ExprPtr> v; v.push_back(ParseE("bytes")); return v; }()));
  module.functions.push_back(std::move(fn));
  auto program = ExtractModule(module);
  ASSERT_TRUE(program.ok());
  const std::string source = PrintProgram(*program);
  EXPECT_NE(source.find("ecv __entry_radio"), std::string::npos);
  EXPECT_NE(source.find("E_net_send_warm"), std::string::npos);
  // Round-trips through the parser.
  EXPECT_TRUE(ParseProgram(source).ok()) << source;
}

// --- Empirical fallback -------------------------------------------------------

TEST(EmpiricalTest, RecoversLinearModel) {
  // Black box: E = 3e-6 * n + 5e-7 * n^2 (plus nothing else).
  MeasureFn measure = [](const std::vector<double>& args) -> Result<Energy> {
    const double n = args[0];
    return Energy::Joules(3e-6 * n + 5e-7 * n * n);
  };
  std::vector<std::vector<double>> samples;
  for (double n = 1.0; n <= 32.0; n += 1.0) {
    samples.push_back({n});
  }
  auto fit = FitEmpiricalInterface("blackbox", {"n"}, {"n", "n * n"}, samples,
                                   measure);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_GT(fit->r_squared, 0.99999);
  EXPECT_NEAR(fit->coefficients[0], 3e-6, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 5e-7, 1e-10);

  auto iface = EnergyInterface::FromProgram(std::move(fit->program),
                                            "E_blackbox");
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto predicted = iface->Expected({Value::Number(10.0)});
  ASSERT_TRUE(predicted.ok());
  EXPECT_NEAR(predicted->joules(), 3e-5 + 5e-5, 1e-9);
}

TEST(EmpiricalTest, InputValidation) {
  MeasureFn measure = [](const std::vector<double>&) -> Result<Energy> {
    return Energy::Joules(1.0);
  };
  EXPECT_FALSE(
      FitEmpiricalInterface("x", {"n"}, {}, {{1.0}}, measure).ok());
  EXPECT_FALSE(
      FitEmpiricalInterface("x", {"n"}, {"n", "n*n"}, {{1.0}}, measure).ok());
  EXPECT_FALSE(FitEmpiricalInterface("x", {"n"}, {"m"}, {{1.0}, {2.0}},
                                     measure)
                   .ok());
}

TEST(EmpiricalTest, MeasurementErrorsPropagate) {
  MeasureFn measure = [](const std::vector<double>&) -> Result<Energy> {
    return InternalError("device unplugged");
  };
  auto fit = FitEmpiricalInterface("x", {"n"}, {"n"}, {{1.0}, {2.0}}, measure);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace eclarity
