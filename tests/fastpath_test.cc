// Parity tests for the two evaluation engines: the lowered fast path
// (EvalEngine::kFastPath) must be observationally identical to the
// tree-walking reference interpreter (EvalEngine::kTreeWalk) — same
// outcome values (bit-exact), probabilities, draw order, and error codes
// and messages. Also covers the determinism guarantee of the parallel
// Monte Carlo reduction.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/eval/interp.h"
#include "src/lang/parser.h"
#include "src/obs/trace.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

std::vector<Value> NumberArgs(const std::vector<double>& xs) {
  std::vector<Value> args;
  args.reserve(xs.size());
  for (double x : xs) {
    args.push_back(Value::Number(x));
  }
  return args;
}

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const Value& v) {
  std::string out;
  v.AppendFingerprint(out);
  return out;
}

EvalOptions FastOptions() {
  EvalOptions options;
  options.engine = EvalEngine::kFastPath;
  return options;
}

EvalOptions TreeOptions() {
  EvalOptions options;
  options.engine = EvalEngine::kTreeWalk;
  return options;
}

// Enumerates `entry` traced on both engines and requires bit-identical
// event streams — the trace-parity contract of src/obs/trace.h. Runs on
// error programs too: events emitted before the failure must also match.
void ExpectTraceParity(const Program& program, const std::string& entry,
                       const std::vector<Value>& args,
                       const EcvProfile& profile = {}) {
  RecordingTraceSink fast_sink;
  RecordingTraceSink tree_sink;
  EvalOptions fast_options = FastOptions();
  fast_options.trace = &fast_sink;
  EvalOptions tree_options = TreeOptions();
  tree_options.trace = &tree_sink;
  Evaluator fast(program, fast_options);
  Evaluator tree(program, tree_options);
  auto fast_out = fast.Enumerate(entry, args, profile);
  auto tree_out = tree.Enumerate(entry, args, profile);
  ASSERT_EQ(fast_out.ok(), tree_out.ok())
      << "traced fast: " << fast_out.status().ToString()
      << "\ntraced tree: " << tree_out.status().ToString();
  const std::vector<TraceEvent> fast_events = fast_sink.TakeEvents();
  const std::vector<TraceEvent> tree_events = tree_sink.TakeEvents();
  ASSERT_EQ(fast_events.size(), tree_events.size())
      << "fast trace:\n" << FormatTrace(fast_events) << "tree trace:\n"
      << FormatTrace(tree_events);
  for (size_t i = 0; i < fast_events.size(); ++i) {
    EXPECT_EQ(TraceEventFingerprint(fast_events[i]),
              TraceEventFingerprint(tree_events[i]))
        << "event " << i << "\nfast: " << FormatTraceEvent(fast_events[i])
        << "\ntree: " << FormatTraceEvent(tree_events[i]);
  }
}

// Enumerates `entry` on both engines and requires bit-identical results:
// same outcome order, values, probability bits, and ECV draw sequences —
// or the same error code and message. Also checks trace parity, so the
// whole parity corpus exercises the event stream.
void ExpectEnumerationParity(const Program& program, const std::string& entry,
                             const std::vector<Value>& args,
                             const EcvProfile& profile = {}) {
  ExpectTraceParity(program, entry, args, profile);
  Evaluator fast(program, FastOptions());
  Evaluator tree(program, TreeOptions());
  auto fast_out = fast.Enumerate(entry, args, profile);
  auto tree_out = tree.Enumerate(entry, args, profile);
  ASSERT_EQ(fast_out.ok(), tree_out.ok())
      << "fast: " << fast_out.status().ToString()
      << "\ntree: " << tree_out.status().ToString();
  if (!fast_out.ok()) {
    EXPECT_EQ(fast_out.status().code(), tree_out.status().code());
    EXPECT_EQ(fast_out.status().message(), tree_out.status().message());
    return;
  }
  ASSERT_EQ(fast_out->size(), tree_out->size());
  for (size_t i = 0; i < fast_out->size(); ++i) {
    const WeightedOutcome& f = (*fast_out)[i];
    const WeightedOutcome& t = (*tree_out)[i];
    EXPECT_EQ(Fingerprint(f.value), Fingerprint(t.value)) << "outcome " << i;
    EXPECT_EQ(Bits(f.probability), Bits(t.probability)) << "outcome " << i;
    ASSERT_EQ(f.ecv_assignments.size(), t.ecv_assignments.size())
        << "outcome " << i;
    for (size_t j = 0; j < f.ecv_assignments.size(); ++j) {
      EXPECT_EQ(f.ecv_assignments[j].first, t.ecv_assignments[j].first);
      EXPECT_EQ(Fingerprint(f.ecv_assignments[j].second),
                Fingerprint(t.ecv_assignments[j].second));
    }
  }
}

// Samples `entry` on both engines from identically seeded RNGs and requires
// the same value (or the same error).
void ExpectSampleParity(const Program& program, const std::string& entry,
                        const std::vector<Value>& args,
                        const EcvProfile& profile = {}) {
  Evaluator fast(program, FastOptions());
  Evaluator tree(program, TreeOptions());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng fast_rng(seed);
    Rng tree_rng(seed);
    auto f = fast.EvalSampled(entry, args, profile, fast_rng);
    auto t = tree.EvalSampled(entry, args, profile, tree_rng);
    ASSERT_EQ(f.ok(), t.ok()) << "seed " << seed << "\nfast: "
                              << f.status().ToString()
                              << "\ntree: " << t.status().ToString();
    if (!f.ok()) {
      EXPECT_EQ(f.status().code(), t.status().code());
      EXPECT_EQ(f.status().message(), t.status().message());
    } else {
      EXPECT_EQ(Fingerprint(*f), Fingerprint(*t)) << "seed " << seed;
    }
  }
}

// The corpus lives in tests/parity_programs.h so the analytic differential
// harness replays exactly the same programs.
TEST(FastPathTest, ParityCorpus) {
  for (const parity::ParityCase& c : parity::kParityCorpus) {
    SCOPED_TRACE(c.name);
    const Program p = MustParse(c.source);
    const std::vector<Value> args = NumberArgs(c.args);
    ExpectEnumerationParity(p, c.entry, args);
    ExpectSampleParity(p, c.entry, args);
  }
}

TEST(FastPathTest, ProfileOverrideParity) {
  const Program p = MustParse(parity::kProfileOverrideSource);
  EcvProfile profile;
  ASSERT_TRUE(profile
                  .Set("mode", {{Value::Bool(true), 0.2},
                                {Value::Bool(false), 0.8}})
                  .ok());
  ExpectEnumerationParity(p, "f", {}, profile);
  ExpectSampleParity(p, "f", {}, profile);
}

TEST(FastPathTest, ErrorParity) {
  // Each corpus program hits a different failure path; both engines must
  // agree on the status code and the exact message.
  for (const parity::ParityCase& c : parity::kErrorCorpus) {
    SCOPED_TRACE(c.name);
    const Program p = MustParse(c.source);
    const std::vector<Value> args = NumberArgs(c.args);
    ExpectEnumerationParity(p, c.entry, args);
    ExpectSampleParity(p, c.entry, args);
  }
}

TEST(FastPathTest, ConstantFoldingPreservesRuntimeErrors) {
  // The folder sees `log(-1)` with constant arguments; the failure must
  // still surface at evaluation time with the tree-walk's message.
  const Program p = MustParse(
      "const bad = log(0 - 1);\n"
      "interface f(x) { return bad * 1J; }");
  ExpectEnumerationParity(p, "f", {Value::Number(1.0)});
}

TEST(FastPathTest, MonteCarloDeterministicAcrossWorkerCounts) {
  const Program p = MustParse(parity::kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  double reference = 0.0;
  bool have_reference = false;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
    EvalOptions options;
    options.mc_workers = workers;
    Evaluator eval(p, options);
    Rng rng(42);
    auto mean = eval.MonteCarloMean("E_ml_webservice_handle", args, {}, rng,
                                    2000);
    ASSERT_TRUE(mean.ok()) << mean.status().ToString();
    if (!have_reference) {
      reference = mean->joules();
      have_reference = true;
    } else {
      EXPECT_EQ(Bits(mean->joules()), Bits(reference))
          << "workers=" << workers;
    }
  }
}

TEST(FastPathTest, MonteCarloAgreesWithExactExpectation) {
  const Program p = MustParse(parity::kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  Evaluator eval(p);
  auto exact = eval.ExpectedEnergy("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(exact.ok());
  Rng rng(7);
  auto mc = eval.MonteCarloMean("E_ml_webservice_handle", args, {}, rng,
                                20000);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_NEAR(mc->joules() / exact->joules(), 1.0, 0.05);
}

TEST(FastPathTest, MonteCarloSurfacesSampleErrors) {
  const Program p = MustParse(
      "interface f(x) { ecv e ~ bernoulli(2); return e ? 1J : 2J; }");
  Evaluator eval(p);
  Rng rng(1);
  auto mc = eval.MonteCarloMean("f", {Value::Number(0.0)}, {}, rng, 100);
  EXPECT_FALSE(mc.ok());
}

}  // namespace
}  // namespace eclarity
