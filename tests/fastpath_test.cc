// Parity tests for the two evaluation engines: the lowered fast path
// (EvalEngine::kFastPath) must be observationally identical to the
// tree-walking reference interpreter (EvalEngine::kTreeWalk) — same
// outcome values (bit-exact), probabilities, draw order, and error codes
// and messages. Also covers the determinism guarantee of the parallel
// Monte Carlo reduction.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/eval/interp.h"
#include "src/lang/parser.h"
#include "src/obs/trace.h"

namespace eclarity {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const Value& v) {
  std::string out;
  v.AppendFingerprint(out);
  return out;
}

EvalOptions FastOptions() {
  EvalOptions options;
  options.engine = EvalEngine::kFastPath;
  return options;
}

EvalOptions TreeOptions() {
  EvalOptions options;
  options.engine = EvalEngine::kTreeWalk;
  return options;
}

// Enumerates `entry` traced on both engines and requires bit-identical
// event streams — the trace-parity contract of src/obs/trace.h. Runs on
// error programs too: events emitted before the failure must also match.
void ExpectTraceParity(const Program& program, const std::string& entry,
                       const std::vector<Value>& args,
                       const EcvProfile& profile = {}) {
  RecordingTraceSink fast_sink;
  RecordingTraceSink tree_sink;
  EvalOptions fast_options = FastOptions();
  fast_options.trace = &fast_sink;
  EvalOptions tree_options = TreeOptions();
  tree_options.trace = &tree_sink;
  Evaluator fast(program, fast_options);
  Evaluator tree(program, tree_options);
  auto fast_out = fast.Enumerate(entry, args, profile);
  auto tree_out = tree.Enumerate(entry, args, profile);
  ASSERT_EQ(fast_out.ok(), tree_out.ok())
      << "traced fast: " << fast_out.status().ToString()
      << "\ntraced tree: " << tree_out.status().ToString();
  const std::vector<TraceEvent> fast_events = fast_sink.TakeEvents();
  const std::vector<TraceEvent> tree_events = tree_sink.TakeEvents();
  ASSERT_EQ(fast_events.size(), tree_events.size())
      << "fast trace:\n" << FormatTrace(fast_events) << "tree trace:\n"
      << FormatTrace(tree_events);
  for (size_t i = 0; i < fast_events.size(); ++i) {
    EXPECT_EQ(TraceEventFingerprint(fast_events[i]),
              TraceEventFingerprint(tree_events[i]))
        << "event " << i << "\nfast: " << FormatTraceEvent(fast_events[i])
        << "\ntree: " << FormatTraceEvent(tree_events[i]);
  }
}

// Enumerates `entry` on both engines and requires bit-identical results:
// same outcome order, values, probability bits, and ECV draw sequences —
// or the same error code and message. Also checks trace parity, so the
// whole parity corpus exercises the event stream.
void ExpectEnumerationParity(const Program& program, const std::string& entry,
                             const std::vector<Value>& args,
                             const EcvProfile& profile = {}) {
  ExpectTraceParity(program, entry, args, profile);
  Evaluator fast(program, FastOptions());
  Evaluator tree(program, TreeOptions());
  auto fast_out = fast.Enumerate(entry, args, profile);
  auto tree_out = tree.Enumerate(entry, args, profile);
  ASSERT_EQ(fast_out.ok(), tree_out.ok())
      << "fast: " << fast_out.status().ToString()
      << "\ntree: " << tree_out.status().ToString();
  if (!fast_out.ok()) {
    EXPECT_EQ(fast_out.status().code(), tree_out.status().code());
    EXPECT_EQ(fast_out.status().message(), tree_out.status().message());
    return;
  }
  ASSERT_EQ(fast_out->size(), tree_out->size());
  for (size_t i = 0; i < fast_out->size(); ++i) {
    const WeightedOutcome& f = (*fast_out)[i];
    const WeightedOutcome& t = (*tree_out)[i];
    EXPECT_EQ(Fingerprint(f.value), Fingerprint(t.value)) << "outcome " << i;
    EXPECT_EQ(Bits(f.probability), Bits(t.probability)) << "outcome " << i;
    ASSERT_EQ(f.ecv_assignments.size(), t.ecv_assignments.size())
        << "outcome " << i;
    for (size_t j = 0; j < f.ecv_assignments.size(); ++j) {
      EXPECT_EQ(f.ecv_assignments[j].first, t.ecv_assignments[j].first);
      EXPECT_EQ(Fingerprint(f.ecv_assignments[j].second),
                Fingerprint(t.ecv_assignments[j].second));
    }
  }
}

// Samples `entry` on both engines from identically seeded RNGs and requires
// the same value (or the same error).
void ExpectSampleParity(const Program& program, const std::string& entry,
                        const std::vector<Value>& args,
                        const EcvProfile& profile = {}) {
  Evaluator fast(program, FastOptions());
  Evaluator tree(program, TreeOptions());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng fast_rng(seed);
    Rng tree_rng(seed);
    auto f = fast.EvalSampled(entry, args, profile, fast_rng);
    auto t = tree.EvalSampled(entry, args, profile, tree_rng);
    ASSERT_EQ(f.ok(), t.ok()) << "seed " << seed << "\nfast: "
                              << f.status().ToString()
                              << "\ntree: " << t.status().ToString();
    if (!f.ok()) {
      EXPECT_EQ(f.status().code(), t.status().code());
      EXPECT_EQ(f.status().message(), t.status().message());
    } else {
      EXPECT_EQ(Fingerprint(*f), Fingerprint(*t)) << "seed " << seed;
    }
  }
}

constexpr char kFig1Source[] = R"(
const max_response_len = 1024;
interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}
interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 0.001mJ * response_len;
  } else {
    return 0.1mJ * response_len;
  }
}
interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * (image_size - n_zeros) * 20nJ +
         8 * n_embedding * 0.1nJ +
         16 * n_embedding * 1.5nJ;
}
)";

TEST(FastPathTest, Fig1EnumerationParity) {
  const Program p = MustParse(kFig1Source);
  ExpectEnumerationParity(p, "E_ml_webservice_handle",
                          {Value::Number(50176.0), Value::Number(10000.0)});
  ExpectSampleParity(p, "E_ml_webservice_handle",
                     {Value::Number(50176.0), Value::Number(10000.0)});
}

TEST(FastPathTest, LoopsConstsAndBuiltinsParity) {
  const Program p = MustParse(R"(
const k_iters = 4;
const k_unit = 2mJ;
interface f(x) {
  let mut total = 0J;
  for i in 0..k_iters {
    ecv spike ~ bernoulli(0.25);
    let step = spike ? k_unit * (i + 1) : k_unit;
    total = total + step;
  }
  return total + min(x, k_iters) * 1mJ;
}
)");
  ExpectEnumerationParity(p, "f", {Value::Number(7.0)});
  ExpectSampleParity(p, "f", {Value::Number(7.0)});
}

TEST(FastPathTest, NestedCallsAndCategoricalParity) {
  const Program p = MustParse(R"(
interface outer(n) {
  ecv tier ~ categorical(0: 0.5, 1: 0.3, 2: 0.2);
  return inner(tier) * n;
}
interface inner(tier) {
  ecv burst ~ uniform_int(1, 3);
  return (tier + 1) * burst * 1uJ;
}
)");
  ExpectEnumerationParity(p, "outer", {Value::Number(2.0)});
  ExpectSampleParity(p, "outer", {Value::Number(2.0)});
}

TEST(FastPathTest, ProfileOverrideParity) {
  const Program p = MustParse(R"(
interface f() {
  ecv mode ~ bernoulli(0.5);
  return mode ? 1mJ : 2mJ;
}
)");
  EcvProfile profile;
  ASSERT_TRUE(profile
                  .Set("mode", {{Value::Bool(true), 0.2},
                                {Value::Bool(false), 0.8}})
                  .ok());
  ExpectEnumerationParity(p, "f", {}, profile);
  ExpectSampleParity(p, "f", {}, profile);
}

TEST(FastPathTest, ErrorParity) {
  // Each program/entry pair hits a different failure path; both engines must
  // agree on the status code and the exact message.
  const struct {
    const char* source;
    const char* entry;
    std::vector<Value> args;
  } cases[] = {
      // Undefined variable.
      {"interface f(x) { return ghost + x; }", "f", {Value::Number(1.0)}},
      // Call to an undefined interface.
      {"interface f(x) { return E_missing(x); }", "f", {Value::Number(1.0)}},
      // Arity mismatch.
      {"interface f(x) { return g(x, x); }\n"
       "interface g(a) { return a * 1J; }",
       "f",
       {Value::Number(1.0)}},
      // Non-bool condition.
      {"interface f(x) { if (x) { return 1J; } return 2J; }", "f",
       {Value::Number(1.0)}},
      // Assignment to an immutable binding.
      {"interface f(x) { let y = 1; y = 2; return y * 1J; }", "f",
       {Value::Number(1.0)}},
      // Bernoulli parameter out of range.
      {"interface f(p) { ecv e ~ bernoulli(p); return e ? 1J : 2J; }", "f",
       {Value::Number(1.5)}},
      // Mixed-kind arithmetic.
      {"interface f(x) { return x + 1J; }", "f", {Value::Number(2.0)}},
      // Unknown entry interface.
      {"interface f(x) { return x * 1J; }", "nope", {Value::Number(1.0)}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.source);
    const Program p = MustParse(c.source);
    ExpectEnumerationParity(p, c.entry, c.args);
    ExpectSampleParity(p, c.entry, c.args);
  }
}

TEST(FastPathTest, ConstantFoldingPreservesRuntimeErrors) {
  // The folder sees `log(-1)` with constant arguments; the failure must
  // still surface at evaluation time with the tree-walk's message.
  const Program p = MustParse(
      "const bad = log(0 - 1);\n"
      "interface f(x) { return bad * 1J; }");
  ExpectEnumerationParity(p, "f", {Value::Number(1.0)});
}

TEST(FastPathTest, MonteCarloDeterministicAcrossWorkerCounts) {
  const Program p = MustParse(kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  double reference = 0.0;
  bool have_reference = false;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
    EvalOptions options;
    options.mc_workers = workers;
    Evaluator eval(p, options);
    Rng rng(42);
    auto mean = eval.MonteCarloMean("E_ml_webservice_handle", args, {}, rng,
                                    2000);
    ASSERT_TRUE(mean.ok()) << mean.status().ToString();
    if (!have_reference) {
      reference = mean->joules();
      have_reference = true;
    } else {
      EXPECT_EQ(Bits(mean->joules()), Bits(reference))
          << "workers=" << workers;
    }
  }
}

TEST(FastPathTest, MonteCarloAgreesWithExactExpectation) {
  const Program p = MustParse(kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  Evaluator eval(p);
  auto exact = eval.ExpectedEnergy("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(exact.ok());
  Rng rng(7);
  auto mc = eval.MonteCarloMean("E_ml_webservice_handle", args, {}, rng,
                                20000);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_NEAR(mc->joules() / exact->joules(), 1.0, 0.05);
}

TEST(FastPathTest, MonteCarloSurfacesSampleErrors) {
  const Program p = MustParse(
      "interface f(x) { ecv e ~ bernoulli(2); return e ? 1J : 2J; }");
  Evaluator eval(p);
  Rng rng(1);
  auto mc = eval.MonteCarloMean("f", {Value::Number(0.0)}, {}, rng, 100);
  EXPECT_FALSE(mc.ok());
}

}  // namespace
}  // namespace eclarity
