// Robustness tests: the lexer/parser/evaluator must return error Statuses —
// never crash, hang, or accept garbage — on hostile inputs: random byte
// soup, random token soup, and mutations of valid programs.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/eval/interp.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/util/rng.h"
#include "tests/deep_program_gen.h"

namespace eclarity {
namespace {

constexpr char kValidProgram[] = R"(
const base = 2mJ;
extern interface E_hw(n);
interface E_cache_lookup(response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 5mJ * response_len + base;
  } else {
    return 100mJ * response_len + E_hw(response_len);
  }
}
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    total = total + E_cache_lookup(i + 1);
  }
  return total;
}
)";

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xf022 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const size_t length = rng.UniformUint64(200) + 1;
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      // Printable-biased byte soup (parsers see mostly text).
      if (rng.Bernoulli(0.9)) {
        input.push_back(static_cast<char>(rng.UniformInt(32, 126)));
      } else {
        input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
    }
    // Must terminate and return a Status (usually an error) — no crash.
    auto program = ParseProgram(input);
    (void)program.ok();
  }
}

TEST_P(FuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "interface", "extern",  "const", "let",  "mut",   "ecv",   "if",
      "else",      "for",     "in",    "return", "true", "false", "f",
      "x",         "0",       "1.5",   "2mJ",  "(",     ")",     "{",
      "}",         ",",       ";",     ":",    "?",     "~",     "..",
      "=",         "+",       "-",     "*",    "/",     "%",     "!",
      "==",        "!=",      "<",     "<=",   ">",     ">=",    "&&",
      "||",        "\"s\"",   "bernoulli", "au", "min",
  };
  Rng rng(0x70c5 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const int count = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < count; ++i) {
      input += kTokens[rng.UniformUint64(std::size(kTokens))];
      input += ' ';
    }
    auto program = ParseProgram(input);
    (void)program.ok();
  }
}

TEST_P(FuzzTest, MutatedValidProgramsNeverCrash) {
  Rng rng(0x3141 + static_cast<uint64_t>(GetParam()));
  const std::string base = kValidProgram;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.UniformUint64(mutated.size());
      switch (rng.UniformInt(0, 2)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // delete a character
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a slice
          mutated.insert(pos, mutated.substr(
              pos, rng.UniformUint64(8) + 1));
          break;
      }
      if (mutated.empty()) {
        mutated = "x";
      }
    }
    auto program = ParseProgram(mutated);
    if (program.ok()) {
      // If a mutant still parses, evaluation must also fail safely or
      // terminate within budget.
      EvalOptions options;
      options.max_steps = 10000;
      options.max_call_depth = 8;
      options.max_paths = 512;
      Evaluator evaluator(*program, options);
      for (const InterfaceDecl& decl : program->interfaces()) {
        std::vector<Value> args(decl.params.size(), Value::Number(2.0));
        (void)evaluator.Enumerate(decl.name, args, {});
      }
    }
  }
}

TEST_P(FuzzTest, LexerHandlesPathologicalNumbers) {
  Rng rng(0x1e11 + static_cast<uint64_t>(GetParam()));
  const char* kShapes[] = {
      "1e", "1e+", "1e-", "1.", ".5", "1..2", "1.2.3", "1e999", "0x10",
      "1_000", "1mJx", "9999999999999999999999", "1e-999", "..", "...",
  };
  for (const char* shape : kShapes) {
    (void)Tokenize(shape);
    (void)ParseExpression(shape);
  }
  // Random digit/dot/e strings.
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    const char alphabet[] = "0123456789.eE+-J m";
    for (int i = 0; i < n; ++i) {
      s += alphabet[rng.UniformUint64(sizeof(alphabet) - 1)];
    }
    (void)Tokenize(s);
  }
}

TEST_P(FuzzTest, DeepEcvProgramsAnalyticAgreement) {
  // Randomized deep ECV programs (depth <= 14) through the analytic
  // distribution algebra: the exact mode must be bit-identical to the
  // enumeration fold, and the bounded mode's certified envelope must
  // contain the exact mean. (differential_test.cc is the exhaustive
  // harness; this keeps a fast sweep in the fuzz tier.)
  const auto bits = [](double v) {
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  };
  Rng rng(0xdeeb + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    const int depth = 4 + static_cast<int>(rng.UniformInt(0, 10));
    const bool friendly = rng.Bernoulli(0.5);
    const std::string source =
        deepgen::DeepProgram(rng, depth, friendly, /*binary_only=*/true);
    SCOPED_TRACE(source);
    auto program = ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    const std::vector<Value> args = {Value::Number(3.0)};

    Evaluator reference(*program);  // dist_mode defaults to kEnumerate
    auto ref = reference.EvalCertified("deep", args, {});
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    EvalOptions exact_options;
    exact_options.dist_mode = DistMode::kAnalyticExact;
    Evaluator exact(*program, exact_options);
    auto got = exact.EvalCertified("deep", args, {});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->exact);
    EXPECT_EQ(got->mean_error_bound, 0.0);
    EXPECT_EQ(bits(got->mean), bits(ref->mean));
    const auto& ra = ref->distribution.atoms();
    const auto& ga = got->distribution.atoms();
    ASSERT_EQ(ga.size(), ra.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(bits(ga[i].value), bits(ra[i].value)) << "atom " << i;
      EXPECT_EQ(bits(ga[i].probability), bits(ra[i].probability))
          << "atom " << i;
    }

    EvalOptions bounded_options;
    bounded_options.dist_mode = DistMode::kAnalyticBounded;
    bounded_options.prune_threshold = 1e-3;
    Evaluator bounded(*program, bounded_options);
    auto approx = bounded.EvalCertified("deep", args, {});
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    EXPECT_TRUE(std::isfinite(approx->mean));
    EXPECT_LE(std::abs(ref->mean - approx->mean), approx->mean_error_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace eclarity
