// Robustness tests: the lexer/parser/evaluator must return error Statuses —
// never crash, hang, or accept garbage — on hostile inputs: random byte
// soup, random token soup, and mutations of valid programs.

#include <string>

#include <gtest/gtest.h>

#include "src/eval/interp.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/util/rng.h"

namespace eclarity {
namespace {

constexpr char kValidProgram[] = R"(
const base = 2mJ;
extern interface E_hw(n);
interface E_cache_lookup(response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 5mJ * response_len + base;
  } else {
    return 100mJ * response_len + E_hw(response_len);
  }
}
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    total = total + E_cache_lookup(i + 1);
  }
  return total;
}
)";

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xf022 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const size_t length = rng.UniformUint64(200) + 1;
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      // Printable-biased byte soup (parsers see mostly text).
      if (rng.Bernoulli(0.9)) {
        input.push_back(static_cast<char>(rng.UniformInt(32, 126)));
      } else {
        input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
    }
    // Must terminate and return a Status (usually an error) — no crash.
    auto program = ParseProgram(input);
    (void)program.ok();
  }
}

TEST_P(FuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "interface", "extern",  "const", "let",  "mut",   "ecv",   "if",
      "else",      "for",     "in",    "return", "true", "false", "f",
      "x",         "0",       "1.5",   "2mJ",  "(",     ")",     "{",
      "}",         ",",       ";",     ":",    "?",     "~",     "..",
      "=",         "+",       "-",     "*",    "/",     "%",     "!",
      "==",        "!=",      "<",     "<=",   ">",     ">=",    "&&",
      "||",        "\"s\"",   "bernoulli", "au", "min",
  };
  Rng rng(0x70c5 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const int count = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < count; ++i) {
      input += kTokens[rng.UniformUint64(std::size(kTokens))];
      input += ' ';
    }
    auto program = ParseProgram(input);
    (void)program.ok();
  }
}

TEST_P(FuzzTest, MutatedValidProgramsNeverCrash) {
  Rng rng(0x3141 + static_cast<uint64_t>(GetParam()));
  const std::string base = kValidProgram;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.UniformUint64(mutated.size());
      switch (rng.UniformInt(0, 2)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // delete a character
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a slice
          mutated.insert(pos, mutated.substr(
              pos, rng.UniformUint64(8) + 1));
          break;
      }
      if (mutated.empty()) {
        mutated = "x";
      }
    }
    auto program = ParseProgram(mutated);
    if (program.ok()) {
      // If a mutant still parses, evaluation must also fail safely or
      // terminate within budget.
      EvalOptions options;
      options.max_steps = 10000;
      options.max_call_depth = 8;
      options.max_paths = 512;
      Evaluator evaluator(*program, options);
      for (const InterfaceDecl& decl : program->interfaces()) {
        std::vector<Value> args(decl.params.size(), Value::Number(2.0));
        (void)evaluator.Enumerate(decl.name, args, {});
      }
    }
  }
}

TEST_P(FuzzTest, LexerHandlesPathologicalNumbers) {
  Rng rng(0x1e11 + static_cast<uint64_t>(GetParam()));
  const char* kShapes[] = {
      "1e", "1e+", "1e-", "1.", ".5", "1..2", "1.2.3", "1e999", "0x10",
      "1_000", "1mJx", "9999999999999999999999", "1e-999", "..", "...",
  };
  for (const char* shape : kShapes) {
    (void)Tokenize(shape);
    (void)ParseExpression(shape);
  }
  // Random digit/dot/e strings.
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    const char alphabet[] = "0123456789.eE+-J m";
    for (int i = 0; i < n; ++i) {
      s += alphabet[rng.UniformUint64(sizeof(alphabet) - 1)];
    }
    (void)Tokenize(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace eclarity
