// Tests for the hardware substrate: GPU device + telemetry, CPU device,
// RAPL/NVML counters, and vendor interface generation.

#include <cmath>

#include <gtest/gtest.h>

#include "src/eval/interp.h"
#include "src/hw/counters.h"
#include "src/hw/cpu.h"
#include "src/hw/gpu.h"
#include "src/hw/vendor.h"
#include "src/lang/printer.h"

namespace eclarity {
namespace {

KernelStats SomeKernel(double scale = 1.0) {
  KernelStats k;
  k.name = "k";
  k.instructions = 1e9 * scale;
  k.l1_wavefronts = 4e6 * scale;
  k.l2_sectors = 8e6 * scale;
  k.vram_sectors = 2e6 * scale;
  return k;
}

TEST(GpuDeviceTest, KernelAdvancesTimeAndEnergy) {
  GpuDevice device(Rtx4090LikeProfile(), 1);
  const Duration d = device.ExecuteKernel(SomeKernel());
  EXPECT_GT(d.seconds(), 0.0);
  EXPECT_EQ(device.Now(), d);
  EXPECT_GT(device.TrueEnergy().joules(), 0.0);
  EXPECT_DOUBLE_EQ(device.Counters().kernels, 1.0);
  EXPECT_DOUBLE_EQ(device.Counters().instructions, 1e9);
}

TEST(GpuDeviceTest, DurationIsMaxOfComputeAndMemory) {
  GpuProfile profile = Rtx4090LikeProfile();
  GpuDevice device(profile, 1);
  // Memory-bound kernel: lots of VRAM traffic, few instructions.
  KernelStats mem;
  mem.vram_sectors = 1e9;
  mem.instructions = 1.0;
  const double expected_s =
      1e9 * GpuProfile::kBytesPerSector / profile.vram_bytes_per_second +
      GpuProfile::kLaunchOverheadSeconds;
  EXPECT_NEAR(device.ExecuteKernel(mem).seconds(), expected_s, 1e-12);
}

TEST(GpuDeviceTest, TrueEnergyNearModeledEnergy) {
  GpuProfile profile = Rtx4090LikeProfile();
  GpuDevice device(profile, 42);
  const KernelStats k = SomeKernel();
  const Duration d = device.ExecuteKernel(k);
  const double modeled =
      profile.energy_per_instruction.joules() * k.instructions +
      profile.energy_per_l1_wavefront.joules() * k.l1_wavefronts +
      profile.energy_per_l2_sector.joules() * k.l2_sectors +
      profile.energy_per_vram_sector.joules() * k.vram_sectors +
      profile.static_power.watts() * d.seconds();
  // Residuals are a few percent at most.
  EXPECT_NEAR(device.TrueEnergy().joules() / modeled, 1.0, 0.06);
}

TEST(GpuDeviceTest, IdleConsumesStaticOnly) {
  GpuProfile profile = Rtx4090LikeProfile();
  GpuDevice device(profile, 1);
  device.Idle(Duration::Seconds(2.0));
  EXPECT_NEAR(device.TrueEnergy().joules(),
              profile.static_power.watts() * 2.0, 1e-9);
}

TEST(GpuDeviceTest, EnergyRegisterQuantises) {
  GpuProfile profile = Rtx4090LikeProfile();
  profile.energy_resolution = Energy::Joules(1.0);
  GpuDevice device(profile, 1);
  device.Idle(Duration::Seconds(0.01));  // 0.58 J true
  EXPECT_DOUBLE_EQ(device.ReadEnergyRegister().joules(), 0.0);
  device.Idle(Duration::Seconds(0.01));  // 1.16 J true
  EXPECT_DOUBLE_EQ(device.ReadEnergyRegister().joules(), 1.0);
}

TEST(GpuDeviceTest, SamplePowerSeesKernelsAndIdle) {
  GpuProfile profile = Rtx3070LikeProfile();
  profile.power_quantization = Power::Watts(0.0);  // disable quantisation
  GpuDevice device(profile, 7);
  device.Idle(Duration::Seconds(1.0));
  device.ExecuteKernel(SomeKernel(100.0));
  const Duration after_kernel = device.Now();
  device.Idle(Duration::Seconds(1.0));

  const Power idle_power = device.SamplePower(Duration::Seconds(0.5));
  EXPECT_NEAR(idle_power.watts(), profile.static_power.watts(), 1e-9);
  const Power busy_power = device.SamplePower(
      Duration::Seconds(1.0) + (after_kernel - Duration::Seconds(1.0)) * 0.5);
  EXPECT_GT(busy_power.watts(), idle_power.watts());
  // Beyond history: static.
  EXPECT_NEAR(device.SamplePower(Duration::Seconds(100.0)).watts(),
              profile.static_power.watts(), 1e-9);
}

TEST(NvmlCounterTest, EnergyCounterModeTracksTruth) {
  GpuDevice device(Rtx4090LikeProfile(), 3);
  NvmlCounter counter(device);
  device.ExecuteKernel(SomeKernel(10.0));
  device.Idle(Duration::Seconds(0.5));
  const Energy measured = counter.Read();
  EXPECT_NEAR(measured.joules(), device.TrueEnergy().joules(), 1e-3 + 1e-9);
}

TEST(NvmlCounterTest, PowerSamplingConvergesOnSteadyLoad) {
  GpuProfile profile = Rtx3070LikeProfile();
  GpuDevice device(profile, 5);
  NvmlCounter counter(device);
  // One long steady kernel: sampling should measure it accurately.
  KernelStats big = SomeKernel(2e4);  // tens of seconds of device time
  device.ExecuteKernel(big);
  device.Idle(profile.power_sample_period * 2.0);
  const Energy measured = counter.Read();
  EXPECT_NEAR(measured.joules() / device.TrueEnergy().joules(), 1.0, 0.02);
}

TEST(NvmlCounterTest, PowerSamplingMonotone) {
  GpuProfile profile = Rtx3070LikeProfile();
  GpuDevice device(profile, 5);
  NvmlCounter counter(device);
  Energy last = counter.Read();
  for (int i = 0; i < 10; ++i) {
    device.ExecuteKernel(SomeKernel(50.0));
    device.Idle(Duration::Milliseconds(7.0));
    const Energy now = counter.Read();
    EXPECT_GE(now.joules(), last.joules());
    last = now;
  }
}

TEST(NvmlCounterTest, ZeroElapsedSpanMeasuresZero) {
  // Energy-counter mode: back-to-back reads with no device time in between
  // must diff to exactly zero.
  GpuDevice ec(Rtx4090LikeProfile(), 3);
  NvmlCounter ec_counter(ec);
  ec.ExecuteKernel(SomeKernel());
  const Energy a = ec_counter.Read();
  EXPECT_DOUBLE_EQ(ec_counter.Read().joules() - a.joules(), 0.0);
  // Power-sampling mode: a zero-elapsed span between grid points likewise
  // must not move the integral.
  GpuDevice ps(Rtx3070LikeProfile(), 3);
  NvmlCounter ps_counter(ps);
  ps.ExecuteKernel(SomeKernel(50.0));
  const Energy b = ps_counter.Read();
  EXPECT_DOUBLE_EQ(ps_counter.Read().joules() - b.joules(), 0.0);
}

TEST(NvmlCounterTest, PowerSamplingAliasesSubPeriodBursts) {
  // A compute burst much shorter than the 10 ms sample period, placed
  // between grid points, is invisible to the sampler: every sample lands on
  // idle, so the integral reports roughly static draw and the burst's
  // dynamic energy is lost. This is the aliasing the header warns about.
  GpuProfile profile = Rtx3070LikeProfile();
  GpuDevice device(profile, 9);
  NvmlCounter counter(device);
  device.Idle(Duration::Milliseconds(2.0));
  device.ExecuteKernel(SomeKernel(8.0));  // ~1 ms of work, ends before 10 ms
  ASSERT_LT(device.Now().seconds(), profile.power_sample_period.seconds());
  device.Idle(Duration::Milliseconds(32.0) - device.Now());
  const Energy measured = counter.Read();
  const Energy truth = device.TrueEnergy();
  // Samples at t = 0, 10, 20 ms all see the idle device.
  EXPECT_NEAR(measured.joules(), profile.static_power.watts() * 0.030, 0.05);
  EXPECT_LT(measured.joules(), truth.joules() * 0.85);
}

TEST(NvmlCounterTest, PowerSamplingMonotoneUnderCursorJitter) {
  // Reads at irregular times — mid-period, on grid edges, after long and
  // sub-period idles — must still be non-decreasing, and re-reading with no
  // elapsed time must not move the counter.
  GpuProfile profile = Rtx3070LikeProfile();
  GpuDevice device(profile, 11);
  NvmlCounter counter(device);
  Energy last = counter.Read();
  const double idles_ms[] = {0.5, 13.0, 0.0, 7.0, 29.0, 3.0, 10.0, 0.25};
  int i = 0;
  for (const double idle_ms : idles_ms) {
    device.ExecuteKernel(SomeKernel(0.5 + 3.0 * (i++ % 3)));
    if (idle_ms > 0.0) {
      device.Idle(Duration::Milliseconds(idle_ms));
    }
    const Energy now = counter.Read();
    EXPECT_GE(now.joules(), last.joules());
    EXPECT_DOUBLE_EQ(counter.Read().joules(), now.joules());
    last = now;
  }
}

// --- RAPL --------------------------------------------------------------------

TEST(RaplCounterTest, QuantisesToUnits) {
  RaplCounter rapl;
  rapl.Update(Energy::Joules(1.0));
  const uint32_t reg = rapl.ReadRegister();
  EXPECT_EQ(reg, 65536u);
  rapl.Update(Energy::Joules(1.0) + Energy::Microjoules(20.0));
  EXPECT_EQ(rapl.ReadRegister(), 65537u);  // one 15.26 uJ tick more
}

TEST(RaplCounterTest, EnergyBetweenHandlesWrap) {
  const uint32_t before = 0xffffff00u;
  const uint32_t after = 0x00000100u;
  const Energy e = RaplCounter::EnergyBetween(before, after);
  EXPECT_NEAR(e.joules(), 512.0 * RaplCounter::kJoulesPerTick, 1e-12);
}

TEST(RaplCounterTest, RegisterWrapsAtExactBoundary) {
  // Drive the register to 0xffffffff through Update(), then across the wrap:
  // the visible value restarts near zero and the delta stays exact.
  RaplCounter rapl;
  const double tick = RaplCounter::kJoulesPerTick;
  rapl.Update(Energy::Joules(4294967295.0 * tick));
  EXPECT_EQ(rapl.ReadRegister(), 0xffffffffu);
  const uint32_t before = rapl.ReadRegister();
  rapl.Update(Energy::Joules(4294967297.0 * tick));  // two ticks later
  EXPECT_EQ(rapl.ReadRegister(), 1u);
  EXPECT_NEAR(RaplCounter::EnergyBetween(before, rapl.ReadRegister()).joules(),
              2.0 * tick, 1e-15);
  // The 0xffffffff -> 0 edge itself is one tick, not -2^32 ticks.
  EXPECT_NEAR(RaplCounter::EnergyBetween(0xffffffffu, 0u).joules(), tick,
              1e-15);
}

TEST(RaplCounterTest, BoundedEnergyBetweenAcceptsPlausibleWrap) {
  const uint32_t before = 0xffffff00u;
  const uint32_t after = 0x00000100u;  // 512 ticks across the wrap
  const auto span = RaplCounter::EnergyBetween(
      before, after, Duration::Seconds(1.0), Power::Watts(1.0));
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  EXPECT_DOUBLE_EQ(span->joules(),
                   RaplCounter::EnergyBetween(before, after).joules());
}

TEST(RaplCounterTest, BoundedEnergyBetweenRejectsImplausibleDelta) {
  // A 1 J delta in 1 ms at a 10 W ceiling is physically impossible: the
  // register jumped, reset, or wrapped unseen.
  const auto span = RaplCounter::EnergyBetween(
      0u, 65536u, Duration::Milliseconds(1.0), Power::Watts(10.0));
  ASSERT_FALSE(span.ok());
  EXPECT_EQ(span.status().code(), StatusCode::kOutOfRange);
}

TEST(RaplCounterTest, BoundedEnergyBetweenFlagsMultiWrapAmbiguity) {
  // 100 kW for 1000 s could wrap the 65536 J register more than once; any
  // single-wrap correction of the 32-bit delta would be a guess.
  const auto span = RaplCounter::EnergyBetween(
      0u, 1u, Duration::Seconds(1000.0), Power::Watts(100000.0));
  ASSERT_FALSE(span.ok());
  EXPECT_EQ(span.status().code(), StatusCode::kOutOfRange);
}

TEST(RaplCounterTest, BoundedEnergyBetweenRejectsNegativeElapsed) {
  const auto span = RaplCounter::EnergyBetween(
      0u, 1u, Duration::Seconds(-1.0), Power::Watts(10.0));
  ASSERT_FALSE(span.ok());
  EXPECT_EQ(span.status().code(), StatusCode::kInvalidArgument);
}

TEST(RaplCounterTest, MonotoneUpdatesIgnoreRegression) {
  RaplCounter rapl;
  rapl.Update(Energy::Joules(2.0));
  rapl.Update(Energy::Joules(1.0));  // stale reading must not move it back
  EXPECT_EQ(rapl.ReadRegister(), 2u * 65536u);
}

// --- CPU ---------------------------------------------------------------------

TEST(CpuDeviceTest, ProfileLayout) {
  CpuDevice device(BigLittleProfile());
  EXPECT_EQ(device.CoreCount(), 8);
  EXPECT_EQ(device.CoreType(0), "big");
  EXPECT_EQ(device.CoreType(7), "little");
  EXPECT_EQ(device.OppCount(0), 4);
  EXPECT_EQ(device.OppCount(7), 3);
}

TEST(CpuDeviceTest, QuantumExecutesAndAccountsEnergy) {
  CpuDevice device(BigLittleProfile());
  ASSERT_TRUE(device.SetOpp(0, 3).ok());
  const Duration quantum = Duration::Milliseconds(10.0);
  auto result = device.RunQuantum(0, quantum, 1e7, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->ops_executed, 1e7);
  EXPECT_GT(result->energy.joules(), 0.0);
  EXPECT_GT(result->utilization, 0.0);
  EXPECT_LT(result->utilization, 1.0);
  device.FinishQuantum(quantum);
  EXPECT_DOUBLE_EQ(device.Now().seconds(), 0.01);
  EXPECT_GT(device.TrueEnergy().joules(), result->energy.joules());  // idle
}

TEST(CpuDeviceTest, CapacityCapsExecution) {
  CpuDevice device(BigLittleProfile());
  ASSERT_TRUE(device.SetOpp(0, 0).ok());
  const Duration quantum = Duration::Milliseconds(1.0);
  const double capacity = device.PeakOpsPerSecond(0) * 0.001;
  auto result = device.RunQuantum(0, quantum, capacity * 10.0, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ops_executed, capacity, 1.0);
  EXPECT_NEAR(result->utilization, 1.0, 1e-9);
}

TEST(CpuDeviceTest, LittleCoreMoreEfficientForLightWork) {
  // Energy per op at max OPP: big should cost more than LITTLE.
  CpuDevice device(BigLittleProfile());
  ASSERT_TRUE(device.SetOpp(0, 3).ok());  // big max
  ASSERT_TRUE(device.SetOpp(4, 2).ok());  // little max
  const Duration quantum = Duration::Milliseconds(10.0);
  const double ops = 1e6;
  auto big = device.RunQuantum(0, quantum, ops, 0.0);
  auto little = device.RunQuantum(4, quantum, ops, 0.0);
  ASSERT_TRUE(big.ok() && little.ok());
  EXPECT_GT(big->energy.joules(), little->energy.joules());
}

TEST(CpuDeviceTest, MemoryIntensityLowersThroughputAndPower) {
  CpuDevice device(BigLittleProfile());
  ASSERT_TRUE(device.SetOpp(0, 3).ok());
  const Duration quantum = Duration::Milliseconds(1.0);
  const double huge = 1e12;  // saturate the quantum
  auto compute = device.RunQuantum(0, quantum, huge, 0.0);
  auto memory = device.RunQuantum(0, quantum, huge, 1.0);
  ASSERT_TRUE(compute.ok() && memory.ok());
  EXPECT_LT(memory->ops_executed, compute->ops_executed);
  EXPECT_LT(memory->energy.joules(), compute->energy.joules());
  // But energy *per op* is higher when memory-bound.
  EXPECT_GT(memory->energy.joules() / memory->ops_executed,
            compute->energy.joules() / compute->ops_executed);
}

TEST(CpuDeviceTest, RaplTracksTotalEnergy) {
  CpuDevice device(BigLittleProfile());
  const Duration quantum = Duration::Milliseconds(10.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(device.RunQuantum(0, quantum, 1e6, 0.0).ok());
    device.FinishQuantum(quantum);
  }
  EXPECT_NEAR(device.Rapl().ReadUnwrapped().joules(),
              device.TrueEnergy().joules(), RaplCounter::kJoulesPerTick * 2);
}

TEST(CpuDeviceTest, InvalidIndicesRejected) {
  CpuDevice device(BigLittleProfile());
  EXPECT_FALSE(device.SetOpp(99, 0).ok());
  EXPECT_FALSE(device.SetOpp(0, 99).ok());
  EXPECT_FALSE(
      device.RunQuantum(99, Duration::Milliseconds(1.0), 1.0, 0.0).ok());
  EXPECT_FALSE(device.RunQuantum(0, Duration::Zero(), 1.0, 0.0).ok());
}

// --- Vendor interfaces ---------------------------------------------------------

TEST(VendorTest, GpuInterfaceMatchesDeviceModel) {
  const GpuProfile profile = Rtx4090LikeProfile();
  auto program = GpuVendorInterface(profile);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Evaluator eval(*program);
  Rng rng(1);
  const KernelStats k = SomeKernel();
  const double duration_s = 0.001;
  auto v = eval.EvalSampled(
      "E_gpu_kernel",
      {Value::Number(k.instructions), Value::Number(k.l1_wavefronts),
       Value::Number(k.l2_sectors), Value::Number(k.vram_sectors),
       Value::Number(duration_s)},
      {}, rng);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const double expected =
      profile.energy_per_instruction.joules() * k.instructions +
      profile.energy_per_l1_wavefront.joules() * k.l1_wavefronts +
      profile.energy_per_l2_sector.joules() * k.l2_sectors +
      profile.energy_per_vram_sector.joules() * k.vram_sectors +
      profile.static_power.watts() * duration_s;
  EXPECT_NEAR(v->energy().concrete().joules(), expected, expected * 1e-12);
}

TEST(VendorTest, CpuInterfaceMatchesDeviceModel) {
  const CpuProfile profile = BigLittleProfile();
  auto program = CpuVendorInterface(profile);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  CpuDevice device(profile);
  ASSERT_TRUE(device.SetOpp(0, 2).ok());
  const Duration quantum = Duration::Milliseconds(10.0);
  const double ops = 5e6;
  const double mi = 0.4;
  auto actual = device.RunQuantum(0, quantum, ops, mi);
  ASSERT_TRUE(actual.ok());

  Evaluator eval(*program);
  Rng rng(1);
  auto dynamic = eval.EvalSampled(
      "E_big_run", {Value::Number(ops), Value::Number(mi), Value::Number(2.0)},
      {}, rng);
  auto idle = eval.EvalSampled("E_big_idle",
                               {Value::Number(quantum.seconds())}, {}, rng);
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().ToString();
  ASSERT_TRUE(idle.ok());
  const double predicted = dynamic->energy().concrete().joules() +
                           idle->energy().concrete().joules();
  EXPECT_NEAR(predicted, actual->energy.joules(),
              actual->energy.joules() * 1e-9);
}

TEST(VendorTest, CpuInterfaceUnknownOppFallsBackToWorstCase) {
  auto program = CpuVendorInterface(BigLittleProfile());
  ASSERT_TRUE(program.ok());
  Evaluator eval(*program);
  Rng rng(1);
  auto top = eval.EvalSampled(
      "E_big_run",
      {Value::Number(1e6), Value::Number(0.0), Value::Number(3.0)}, {}, rng);
  auto unknown = eval.EvalSampled(
      "E_big_run",
      {Value::Number(1e6), Value::Number(0.0), Value::Number(9.0)}, {}, rng);
  ASSERT_TRUE(top.ok() && unknown.ok());
  EXPECT_DOUBLE_EQ(top->energy().concrete().joules(),
                   unknown->energy().concrete().joules());
}

TEST(VendorTest, GeneratedSourceIsReadable) {
  auto program = GpuVendorInterface(Rtx4090LikeProfile());
  ASSERT_TRUE(program.ok());
  const std::string source = PrintProgram(*program);
  EXPECT_NE(source.find("E_gpu_kernel"), std::string::npos);
  EXPECT_NE(source.find("E_gpu_idle"), std::string::npos);
}

}  // namespace
}  // namespace eclarity
