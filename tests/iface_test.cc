// Tests for EnergyInterface, constraints, and perturbation analysis.

#include <gtest/gtest.h>

#include "src/iface/constraints.h"
#include "src/iface/energy_interface.h"
#include "src/iface/perturb.h"
#include "src/lang/parser.h"

namespace eclarity {
namespace {

constexpr char kCacheSource[] = R"(
interface E_cache_lookup(response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 5mJ * response_len;
  } else {
    return 100mJ * response_len;
  }
}
)";

TEST(EnergyInterfaceTest, FromSourceAndExpected) {
  auto iface = EnergyInterface::FromSource(kCacheSource, "E_cache_lookup");
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  EXPECT_EQ(iface->entry(), "E_cache_lookup");
  ASSERT_EQ(iface->params().size(), 1u);
  EXPECT_EQ(iface->params()[0], "response_len");
  auto expected = iface->Expected({Value::Number(1.0)});
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(expected->joules(), 0.8 * 0.005 + 0.2 * 0.1, 1e-12);
}

TEST(EnergyInterfaceTest, MissingEntryRejected) {
  auto iface = EnergyInterface::FromSource(kCacheSource, "nope");
  ASSERT_FALSE(iface.ok());
  EXPECT_EQ(iface.status().code(), StatusCode::kNotFound);
}

TEST(EnergyInterfaceTest, MalformedSourceRejected) {
  EXPECT_FALSE(
      EnergyInterface::FromSource("interface f(x) { }", "f").ok());
  EXPECT_FALSE(
      EnergyInterface::FromSource("interface f(x) { return y; }", "f").ok());
}

TEST(EnergyInterfaceTest, ImportsMustBeDeclaredAndSatisfied) {
  constexpr char kApp[] =
      "interface E_app(n) { return E_hw(n) + 1mJ; }";
  // Undeclared import fails the check.
  EXPECT_FALSE(EnergyInterface::FromSource(kApp, "E_app").ok());
  // Declared import parses but refuses to evaluate.
  auto open_iface = EnergyInterface::FromSource(kApp, "E_app", {"E_hw"});
  ASSERT_TRUE(open_iface.ok());
  ASSERT_EQ(open_iface->UnresolvedImports().size(), 1u);
  auto failed = open_iface->Expected({Value::Number(1.0)});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kFailedPrecondition);
  // Linking the missing layer makes it evaluable.
  auto hw = ParseProgram("interface E_hw(n) { return n * 2mJ; }");
  ASSERT_TRUE(hw.ok());
  auto linked = open_iface->Link(*hw);
  ASSERT_TRUE(linked.ok()) << linked.status().ToString();
  EXPECT_TRUE(linked->UnresolvedImports().empty());
  auto expected = linked->Expected({Value::Number(3.0)});
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(expected->joules(), 7e-3, 1e-12);
}

TEST(EnergyInterfaceTest, RebindRetargetsHardwareLayer) {
  // Paper §3: moving to a different machine replaces only the bottom layer.
  constexpr char kApp[] = "interface E_app(n) { return E_hw(n) + 1mJ; }";
  auto machine_a = ParseProgram("interface E_hw(n) { return n * 2mJ; }");
  auto machine_b = ParseProgram("interface E_hw(n) { return n * 10mJ; }");
  ASSERT_TRUE(machine_a.ok() && machine_b.ok());

  auto iface = EnergyInterface::FromSource(kApp, "E_app", {"E_hw"});
  ASSERT_TRUE(iface.ok());
  auto on_a = iface->Rebind(*machine_a);
  ASSERT_TRUE(on_a.ok());
  auto on_b = on_a->Rebind(*machine_b);
  ASSERT_TRUE(on_b.ok());

  EXPECT_NEAR(on_a->Expected({Value::Number(2.0)})->joules(), 5e-3, 1e-12);
  EXPECT_NEAR(on_b->Expected({Value::Number(2.0)})->joules(), 21e-3, 1e-12);
}

TEST(EnergyInterfaceTest, ToSourceRoundTrips) {
  auto iface = EnergyInterface::FromSource(kCacheSource, "E_cache_lookup");
  ASSERT_TRUE(iface.ok());
  auto reparsed =
      EnergyInterface::FromSource(iface->ToSource(), "E_cache_lookup");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << iface->ToSource();
  EXPECT_NEAR(reparsed->Expected({Value::Number(2.0)})->joules(),
              iface->Expected({Value::Number(2.0)})->joules(), 1e-15);
}

TEST(EnergyInterfaceTest, WorstCaseCoversDistribution) {
  auto iface = EnergyInterface::FromSource(kCacheSource, "E_cache_lookup");
  ASSERT_TRUE(iface.ok());
  auto dist = iface->EnergyDistribution({Value::Number(4.0)});
  auto bounds = iface->WorstCase({IntervalValue::NumberPoint(4.0)});
  ASSERT_TRUE(dist.ok() && bounds.ok());
  EXPECT_GE(dist->MinValue(), bounds->lo_joules - 1e-12);
  EXPECT_LE(dist->MaxValue(), bounds->hi_joules + 1e-12);
}

// --- Constraints ------------------------------------------------------------

constexpr char kEnvelopeSource[] = R"(
interface E_impl(n) {
  ecv hit ~ bernoulli(0.9);
  if (hit) { return n * 1mJ; } else { return n * 4mJ; }
}
interface E_bound_ok(n) { return n * 5mJ; }
interface E_bound_tight(n) { return n * 2mJ; }
)";

TEST(ConstraintsTest, EnvelopeAtPoint) {
  auto program = ParseProgram(kEnvelopeSource);
  ASSERT_TRUE(program.ok());
  auto ok_report = CheckEnvelopeAtPoint(*program, "E_impl", "E_bound_ok",
                                        {Value::Number(3.0)});
  ASSERT_TRUE(ok_report.ok());
  EXPECT_TRUE(ok_report->satisfied);
  EXPECT_NEAR(ok_report->impl_max_joules, 12e-3, 1e-12);
  EXPECT_NEAR(ok_report->bound_joules, 15e-3, 1e-12);

  auto tight_report = CheckEnvelopeAtPoint(*program, "E_impl",
                                           "E_bound_tight",
                                           {Value::Number(3.0)});
  ASSERT_TRUE(tight_report.ok());
  EXPECT_FALSE(tight_report->satisfied);
  EXPECT_LT(tight_report->margin_joules, 0.0);
}

TEST(ConstraintsTest, EnvelopeOnBoxIsSound) {
  auto program = ParseProgram(kEnvelopeSource);
  ASSERT_TRUE(program.ok());
  auto report = CheckEnvelopeOnBox(*program, "E_impl", "E_bound_ok",
                                   {IntervalValue::Number(1.0, 10.0)});
  ASSERT_TRUE(report.ok());
  // impl max = 40 mJ at n=10; bound min = 5 mJ at n=1 -> the box check is
  // conservative and must NOT claim satisfaction across the whole box.
  EXPECT_FALSE(report->satisfied);
  auto narrow = CheckEnvelopeOnBox(*program, "E_impl", "E_bound_ok",
                                   {IntervalValue::Number(3.0, 3.0)});
  ASSERT_TRUE(narrow.ok());
  EXPECT_TRUE(narrow->satisfied);
}

TEST(ConstraintsTest, ConstantEnergyDetectsSideChannel) {
  auto program = ParseProgram(R"(
interface E_crypto_bad(n) {
  ecv key_bit ~ bernoulli(0.5);
  if (key_bit) { return n * 2mJ; } else { return n * 1mJ; }
}
interface E_crypto_good(n) {
  ecv key_bit ~ bernoulli(0.5);
  if (key_bit) { return n * 2mJ; } else { return n * 2mJ; }
}
)");
  ASSERT_TRUE(program.ok());
  auto bad = CheckConstantEnergy(*program, "E_crypto_bad",
                                 {Value::Number(1.0)});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->constant);
  ASSERT_TRUE(bad->low_trace.has_value());
  ASSERT_TRUE(bad->high_trace.has_value());
  EXPECT_EQ((*bad->high_trace)[0].first, "E_crypto_bad.key_bit");

  auto good = CheckConstantEnergy(*program, "E_crypto_good",
                                  {Value::Number(1.0)});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->constant);
}

TEST(ConstraintsTest, ConstantEnergyToleranceApplies) {
  auto program = ParseProgram(R"(
interface E_nearly(n) {
  ecv b ~ bernoulli(0.5);
  if (b) { return 1.0mJ; } else { return 1.01mJ; }
}
)");
  ASSERT_TRUE(program.ok());
  auto strict =
      CheckConstantEnergy(*program, "E_nearly", {Value::Number(1.0)}, 0.0);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->constant);
  auto loose = CheckConstantEnergy(*program, "E_nearly", {Value::Number(1.0)},
                                   2e-5);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->constant);
}

TEST(ConstraintsTest, CompatibilityBatch) {
  auto program = ParseProgram(kEnvelopeSource);
  ASSERT_TRUE(program.ok());
  std::vector<EnergyConstraint> constraints = {
      {ConstraintKind::kUpperBound, "E_impl", "E_bound_ok", 0.0},
      {ConstraintKind::kUpperBound, "E_impl", "E_bound_tight", 0.0},
      {ConstraintKind::kConstantEnergy, "E_impl", "", 0.0},
  };
  std::vector<std::vector<Value>> inputs = {{Value::Number(1.0)},
                                            {Value::Number(8.0)}};
  auto violations = CheckCompatibility(*program, constraints, inputs);
  ASSERT_TRUE(violations.ok());
  // E_bound_tight violated at both inputs; constant-energy violated at both.
  EXPECT_EQ(violations->size(), 4u);
}

// --- Perturbation ------------------------------------------------------------

TEST(PerturbTest, ZeroEpsilonIsIdentity) {
  auto program = ParseProgram(kCacheSource);
  ASSERT_TRUE(program.ok());
  Rng rng(3);
  auto perturbed = PerturbProgram(*program, 0.0, rng);
  ASSERT_TRUE(perturbed.ok());
  Evaluator a(*program);
  Evaluator b(*perturbed);
  EXPECT_DOUBLE_EQ(
      a.ExpectedEnergy("E_cache_lookup", {Value::Number(2.0)}, {})->joules(),
      b.ExpectedEnergy("E_cache_lookup", {Value::Number(2.0)}, {})->joules());
}

TEST(PerturbTest, EpsilonBoundsError) {
  auto program = ParseProgram(kCacheSource);
  ASSERT_TRUE(program.ok());
  Rng rng(11);
  const double eps = 0.1;
  for (int i = 0; i < 20; ++i) {
    auto perturbed = PerturbProgram(*program, eps, rng);
    ASSERT_TRUE(perturbed.ok());
    Evaluator base(*program);
    Evaluator pert(*perturbed);
    const double truth =
        base.ExpectedEnergy("E_cache_lookup", {Value::Number(2.0)}, {})
            ->joules();
    const double est =
        pert.ExpectedEnergy("E_cache_lookup", {Value::Number(2.0)}, {})
            ->joules();
    // Expectation is a convex combination of perturbed literals, so the
    // relative error cannot exceed epsilon.
    EXPECT_LE(RelativeError(est, truth), eps + 1e-12);
  }
}

TEST(PerturbTest, RejectsInvalidEpsilon) {
  auto program = ParseProgram(kCacheSource);
  ASSERT_TRUE(program.ok());
  Rng rng(1);
  EXPECT_FALSE(PerturbProgram(*program, -0.1, rng).ok());
  EXPECT_FALSE(PerturbProgram(*program, 1.0, rng).ok());
}

TEST(PerturbTest, ComposedErrorStudyProducesSummary) {
  auto program = ParseProgram(kCacheSource);
  ASSERT_TRUE(program.ok());
  Rng rng(17);
  auto study = ComposedErrorStudy(*program, "E_cache_lookup",
                                  {Value::Number(2.0)}, 0.05, 50, rng);
  ASSERT_TRUE(study.ok()) << study.status().ToString();
  EXPECT_EQ(study->relative_errors.size(), 50u);
  EXPECT_GT(study->true_expectation_joules, 0.0);
  EXPECT_LE(study->summary.max, 0.05 + 1e-12);
  EXPECT_GT(study->summary.average, 0.0);
}

}  // namespace
}  // namespace eclarity
