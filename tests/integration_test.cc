// Cross-module integration tests: the full pipelines a downstream user
// would run, exercising lang + eval + iface + stack + hw + ml together.

#include <gtest/gtest.h>

#include "src/hw/counters.h"
#include "src/hw/vendor.h"
#include "src/iface/testing.h"
#include "src/ml/calibrate.h"
#include "src/ml/gpt2.h"
#include "src/ml/gpt2_iface.h"
#include "src/stack/stack.h"
#include "src/util/stats.h"

namespace eclarity {
namespace {

// The full Table-1 pipeline at test scale: calibrate -> generate interface
// -> link -> predict -> run -> compare, via the generic testing utility.
TEST(IntegrationTest, Gpt2PipelineThroughTestingUtility) {
  const GpuProfile profile = Rtx4090LikeProfile();
  Gpt2Model model;
  auto calibration = CalibrateGpu(profile);
  ASSERT_TRUE(calibration.ok());
  auto gpt2 = Gpt2EnergyInterface(model, profile);
  auto hw = GpuEnergyInterface(profile.name, calibration->coefficients);
  ASSERT_TRUE(gpt2.ok() && hw.ok());
  auto iface = EnergyInterface::FromProgram(
      std::move(*gpt2), "E_gpt2_generate", {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(iface.ok());
  auto linked = iface->Link(*hw);
  ASSERT_TRUE(linked.ok());

  // Each measurement runs the generation on a fresh device.
  EnergyMeasureFn measure =
      [&](const std::vector<Value>& args) -> Result<Energy> {
    GpuDevice device(profile, 0xfeed + static_cast<uint64_t>(
                                           args[1].number()));
    NvmlCounter counter(device);
    const GenerationRun run = RunGeneration(
        model, device, counter, static_cast<int>(args[0].number()),
        static_cast<int>(args[1].number()));
    return run.measured_energy;
  };
  std::vector<std::vector<Value>> inputs;
  for (int tokens : {10, 40, 80}) {
    inputs.push_back({Value::Number(16.0), Value::Number(tokens)});
  }
  auto report = TestAgainstMeasurement(*linked, inputs, measure, 0.10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->AllWithinThreshold())
      << "max divergence " << report->max_divergence;
}

// A stack embedding the GPT-2 interface as an application layer over the
// GPU hardware layer, with attribution and GPU swapping.
TEST(IntegrationTest, Gpt2InsideSystemStack) {
  Gpt2Model model;
  auto gpt2_program = Gpt2EnergyInterface(model, Rtx4090LikeProfile());
  ASSERT_TRUE(gpt2_program.ok());

  SystemStack stack;
  {
    ResourceManager hw("hardware");
    auto vendor = GpuVendorInterface(Rtx4090LikeProfile());
    ASSERT_TRUE(vendor.ok());
    ASSERT_TRUE(hw.AddResource({"gpu", std::move(*vendor)}).ok());
    ASSERT_TRUE(stack.AddLayer(std::move(hw)).ok());
  }
  {
    ResourceManager app("llm-service");
    ASSERT_TRUE(
        app.AddResource({"gpt2", std::move(*gpt2_program)}).ok());
    ASSERT_TRUE(app.AddGlue(R"(
interface E_chat_turn(prompt_len, reply_len) {
  return E_gpt2_generate(prompt_len, reply_len) + 5mJ;
}
)").ok());
    ASSERT_TRUE(stack.AddLayer(std::move(app)).ok());
  }

  auto iface = stack.Compose("E_chat_turn");
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  const std::vector<Value> args = {Value::Number(16.0), Value::Number(32.0)};
  auto energy_4090 = iface->Expected(args);
  ASSERT_TRUE(energy_4090.ok());
  EXPECT_GT(energy_4090->joules(), 0.0);

  auto contributions = stack.AttributeByLayer("E_chat_turn", args);
  ASSERT_TRUE(contributions.ok()) << contributions.status().ToString();
  double fraction_sum = 0.0;
  for (const LayerContribution& c : *contributions) {
    fraction_sum += c.fraction;
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
  // All the real energy is in the hardware layer; the app adds only 5 mJ.
  EXPECT_GT((*contributions)[0].fraction, 0.9);

  // Swap the GPU.
  ResourceManager hw_b("hardware");
  auto vendor_b = GpuVendorInterface(Rtx3070LikeProfile());
  ASSERT_TRUE(vendor_b.ok());
  ASSERT_TRUE(hw_b.AddResource({"gpu", std::move(*vendor_b)}).ok());
  ASSERT_TRUE(stack.SwapLayer("hardware", std::move(hw_b)).ok());
  auto iface_b = stack.Compose("E_chat_turn");
  ASSERT_TRUE(iface_b.ok());
  auto energy_3070 = iface_b->Expected(args);
  ASSERT_TRUE(energy_3070.ok());
  EXPECT_NE(energy_3070->joules(), energy_4090->joules());
}

// Worst-case bounds from the composed stack must cover sampled runs.
TEST(IntegrationTest, StackWorstCaseCoversSamples) {
  SystemStack stack;
  {
    ResourceManager hw("hardware");
    auto vendor = CpuVendorInterface(ServerCpuProfile(1));
    ASSERT_TRUE(vendor.ok());
    ASSERT_TRUE(hw.AddResource({"cpu", std::move(*vendor)}).ok());
    ASSERT_TRUE(stack.AddLayer(std::move(hw)).ok());
  }
  {
    ResourceManager app("app");
    ASSERT_TRUE(app.AddGlue(R"(
interface E_job(items) {
  ecv retry ~ bernoulli(0.1);
  let mut total = 0J;
  for i in 0..items {
    total = total + E_server_run(50000, 0.4, 1);
  }
  if (retry) {
    total = total + E_server_run(200000, 0.4, 1);
  }
  return total + E_package(0.001) ;
}
)").ok());
    ASSERT_TRUE(stack.AddLayer(std::move(app)).ok());
  }
  auto iface = stack.Compose("E_job");
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();

  auto bounds = iface->WorstCase({IntervalValue::Number(1.0, 8.0)});
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();
  Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    const double items = static_cast<double>(rng.UniformInt(1, 8));
    auto sample = iface->Sample({Value::Number(items)}, {}, rng);
    ASSERT_TRUE(sample.ok());
    const double joules = sample->energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-12);
    EXPECT_LE(joules, bounds->hi_joules + 1e-12);
  }
}

// The webservice interface round-trips through eilc-style source dumping.
TEST(IntegrationTest, ComposedStackSourceRoundTrips) {
  SystemStack stack;
  ResourceManager hw("hardware");
  auto vendor = CpuVendorInterface(BigLittleProfile());
  ASSERT_TRUE(vendor.ok());
  ASSERT_TRUE(hw.AddResource({"cpu", std::move(*vendor)}).ok());
  ASSERT_TRUE(stack.AddLayer(std::move(hw)).ok());
  ResourceManager app("app");
  ASSERT_TRUE(app.AddGlue(
      "interface E_tick(n) { return E_big_run(n, 0.5, 2) + E_little_idle(0.01); }")
                  .ok());
  ASSERT_TRUE(stack.AddLayer(std::move(app)).ok());
  auto iface = stack.Compose("E_tick");
  ASSERT_TRUE(iface.ok());

  auto reparsed = EnergyInterface::FromSource(iface->ToSource(), "E_tick");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const std::vector<Value> args = {Value::Number(1e6)};
  EXPECT_NEAR(reparsed->Expected(args)->joules(),
              iface->Expected(args)->joules(), 1e-15);
}

}  // namespace
}  // namespace eclarity
