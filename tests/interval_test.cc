// Tests for the interval / worst-case evaluator, including soundness
// property tests against the concrete interpreter.

#include <gtest/gtest.h>

#include "src/eval/interp.h"
#include "src/eval/interval.h"
#include "src/lang/parser.h"

namespace eclarity {
namespace {

Program MustParse(const char* source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(IntervalTest, PointInputsGivePointOutput) {
  const Program p = MustParse("interface f(n) { return (n * 2 + 1) * 1mJ; }");
  IntervalEvaluator eval(p);
  auto r = eval.EvalIntervalPoint("f", {3.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->lo_joules, 7e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 7e-3, 1e-12);
}

TEST(IntervalTest, IntervalInputWidensOutput) {
  const Program p = MustParse("interface f(n) { return n * 2mJ; }");
  IntervalEvaluator eval(p);
  auto r = eval.EvalInterval("f", {IntervalValue::Number(1.0, 10.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 2e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 20e-3, 1e-12);
}

TEST(IntervalTest, EcvBernoulliCoversBothArms) {
  const Program p = MustParse(R"(
interface f(n) {
  ecv hit ~ bernoulli(0.8);
  if (hit) { return 5mJ * n; } else { return 100mJ * n; }
}
)");
  IntervalEvaluator eval(p);
  auto r = eval.EvalIntervalPoint("f", {1.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 5e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 100e-3, 1e-12);
}

TEST(IntervalTest, EcvProfileNarrowsBounds) {
  const Program p = MustParse(R"(
interface f(n) {
  ecv hit ~ bernoulli(0.8);
  if (hit) { return 5mJ * n; } else { return 100mJ * n; }
}
)");
  IntervalEvaluator eval(p);
  EcvProfile pinned;
  pinned.SetFixed("hit", Value::Bool(true));
  auto r = eval.EvalIntervalPoint("f", {1.0}, pinned);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->hi_joules, 5e-3, 1e-12);
}

TEST(IntervalTest, IndefiniteConditionJoinsMutations) {
  const Program p = MustParse(R"(
interface f(x) {
  let mut bonus = 0J;
  if (x > 5) { bonus = 10mJ; }
  return bonus + 1mJ;
}
)");
  IntervalEvaluator eval(p);
  // x in [0, 10] straddles the branch: result must cover both outcomes.
  auto r = eval.EvalInterval("f", {IntervalValue::Number(0.0, 10.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 1e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 11e-3, 1e-12);
  // x definite on one side collapses to a point.
  auto low = eval.EvalInterval("f", {IntervalValue::Number(0.0, 5.0)});
  ASSERT_TRUE(low.ok());
  EXPECT_NEAR(low->hi_joules, 1e-3, 1e-12);
}

TEST(IntervalTest, DefiniteLoopRunsExactly) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n { total = total + 2mJ; }
  return total;
}
)");
  IntervalEvaluator eval(p);
  auto r = eval.EvalIntervalPoint("f", {5.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 10e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 10e-3, 1e-12);
}

TEST(IntervalTest, IndefiniteTripCountBoundsBothExtremes) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n { total = total + 2mJ; }
  return total;
}
)");
  IntervalEvaluator eval(p);
  auto r = eval.EvalInterval("f", {IntervalValue::Number(3.0, 5.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 6e-3, 1e-12);   // 3 iterations
  EXPECT_NEAR(r->hi_joules, 10e-3, 1e-12);  // 5 iterations
}

TEST(IntervalTest, ReturnsAcrossBranchesAreHulled) {
  const Program p = MustParse(R"(
interface f(x) {
  if (x > 0) { return 1mJ; }
  return 9mJ;
}
)");
  IntervalEvaluator eval(p);
  auto r = eval.EvalInterval("f", {IntervalValue::Number(-1.0, 1.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 1e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 9e-3, 1e-12);
}

TEST(IntervalTest, NestedCallsPropagate) {
  const Program p = MustParse(R"(
interface leaf(n) { return n * 1mJ; }
interface root(n) { return leaf(n) + leaf(n * 2); }
)");
  IntervalEvaluator eval(p);
  auto r = eval.EvalInterval("root", {IntervalValue::Number(1.0, 2.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo_joules, 3e-3, 1e-12);
  EXPECT_NEAR(r->hi_joules, 6e-3, 1e-12);
}

TEST(IntervalTest, DivisionThroughZeroRejected) {
  const Program p = MustParse("interface f(n) { return 1mJ / n; }");
  IntervalEvaluator eval(p);
  EXPECT_FALSE(eval.EvalInterval("f", {IntervalValue::Number(-1.0, 1.0)}).ok());
  EXPECT_TRUE(eval.EvalInterval("f", {IntervalValue::Number(1.0, 2.0)}).ok());
}

TEST(IntervalTest, AbstractUnitsResolveThroughCalibration) {
  const Program p = MustParse(R"(
interface E_relu(n) { return au("relu", n); }
)");
  EnergyCalibration cal;
  cal.Bind("relu", Energy::Microjoules(2.0));
  IntervalEvaluator eval(p, &cal);
  auto r = eval.EvalInterval("E_relu", {IntervalValue::Number(1.0, 4.0)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->lo_joules, 2e-6, 1e-15);
  EXPECT_NEAR(r->hi_joules, 8e-6, 1e-15);

  IntervalEvaluator uncalibrated(p);
  EXPECT_FALSE(
      uncalibrated.EvalInterval("E_relu", {IntervalValue::NumberPoint(1.0)})
          .ok());
}

TEST(IntervalTest, LoopBudgetEnforced) {
  const Program p = MustParse(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n { total = total + 1pJ; }
  return total;
}
)");
  IntervalOptions options;
  options.max_loop_iterations = 10;
  IntervalEvaluator eval(p, nullptr, options);
  EXPECT_FALSE(eval.EvalIntervalPoint("f", {100.0}).ok());
}

TEST(IntervalTest, BuiltinsOverIntervals) {
  const Program p = MustParse(R"(
interface f(x) {
  let a = min(x, 10);
  let b = max(x, 2);
  let c = clamp(x, 0, 5);
  let d = abs(x - 6);
  let e = sqrt(max(x, 0)) + floor(x / 2) + ceil(x / 2) + round(x);
  return (a + b + c + d + e) * 1mJ;
}
)");
  IntervalEvaluator interval_eval(p);
  Evaluator concrete_eval(p);
  auto bounds = interval_eval.EvalInterval(
      "f", {IntervalValue::Number(1.0, 9.0)});
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.UniformDouble(1.0, 9.0);
    auto v = concrete_eval.EvalSampled("f", {Value::Number(x)}, {}, rng);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    const double joules = v->energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-12) << "x=" << x;
    EXPECT_LE(joules, bounds->hi_joules + 1e-12) << "x=" << x;
  }
}

TEST(IntervalTest, ModuloSoundOverIntervals) {
  const Program p = MustParse("interface f(x) { return (x % 7) * 1mJ; }");
  IntervalEvaluator interval_eval(p);
  Evaluator concrete_eval(p);
  auto bounds = interval_eval.EvalInterval(
      "f", {IntervalValue::Number(0.0, 30.0)});
  ASSERT_TRUE(bounds.ok());
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const double x = static_cast<double>(rng.UniformInt(0, 30));
    auto v = concrete_eval.EvalSampled("f", {Value::Number(x)}, {}, rng);
    ASSERT_TRUE(v.ok());
    const double joules = v->energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-12);
    EXPECT_LE(joules, bounds->hi_joules + 1e-12);
  }
  // Point modulo is exact.
  auto exact = interval_eval.EvalIntervalPoint("f", {23.0});
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->lo_joules, 2e-3, 1e-12);
  EXPECT_NEAR(exact->hi_joules, 2e-3, 1e-12);
}

TEST(IntervalTest, PowRequiresDefiniteExponent) {
  const Program p = MustParse("interface f(x, y) { return pow(x, y) * 1mJ; }");
  IntervalEvaluator eval(p);
  auto ok = eval.EvalInterval("f", {IntervalValue::Number(1.0, 3.0),
                                    IntervalValue::NumberPoint(2.0)});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NEAR(ok->lo_joules, 1e-3, 1e-12);
  EXPECT_NEAR(ok->hi_joules, 9e-3, 1e-12);
  auto bad = eval.EvalInterval("f", {IntervalValue::Number(1.0, 3.0),
                                     IntervalValue::Number(1.0, 2.0)});
  EXPECT_FALSE(bad.ok());
}

TEST(IntervalTest, CategoricalEcvHullCoversAllValues) {
  const Program p = MustParse(R"(
interface f() {
  ecv mode ~ categorical(1: 0.2, 5: 0.5, 9: 0.3);
  return mode * 1mJ;
}
)");
  IntervalEvaluator eval(p);
  auto bounds = eval.EvalInterval("f", {});
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR(bounds->lo_joules, 1e-3, 1e-12);
  EXPECT_NEAR(bounds->hi_joules, 9e-3, 1e-12);
}

TEST(IntervalTest, TernaryIndefiniteConditionHulls) {
  const Program p = MustParse(
      "interface f(x) { return (x > 5 ? 1mJ : 7mJ) + 1mJ; }");
  IntervalEvaluator eval(p);
  auto wide = eval.EvalInterval("f", {IntervalValue::Number(0.0, 10.0)});
  ASSERT_TRUE(wide.ok());
  EXPECT_NEAR(wide->lo_joules, 2e-3, 1e-12);
  EXPECT_NEAR(wide->hi_joules, 8e-3, 1e-12);
  auto narrow = eval.EvalInterval("f", {IntervalValue::Number(6.0, 10.0)});
  ASSERT_TRUE(narrow.ok());
  EXPECT_NEAR(narrow->hi_joules, 2e-3, 1e-12);
}

// --- Soundness property: concrete results lie within interval bounds --------

constexpr char kMixedSource[] = R"(
interface f(a, b) {
  ecv hit ~ bernoulli(0.5);
  ecv mode ~ categorical(1: 0.2, 2: 0.3, 3: 0.5);
  let mut total = 0J;
  for i in 0..mode {
    total = total + a * 1mJ;
  }
  if (hit && a > b) {
    total = total + 50mJ;
  } else {
    total = total + b * 2mJ;
  }
  return total + max(a, b) * 1mJ;
}
)";

class IntervalSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSoundnessTest, ConcreteWithinBounds) {
  const Program p = MustParse(kMixedSource);
  IntervalEvaluator interval_eval(p);
  Evaluator concrete_eval(p);
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);

  // Random input box.
  const double a_lo = rng.UniformDouble(0.0, 10.0);
  const double a_hi = a_lo + rng.UniformDouble(0.0, 10.0);
  const double b_lo = rng.UniformDouble(0.0, 10.0);
  const double b_hi = b_lo + rng.UniformDouble(0.0, 10.0);

  auto bounds = interval_eval.EvalInterval(
      "f", {IntervalValue::Number(a_lo, a_hi),
            IntervalValue::Number(b_lo, b_hi)});
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();

  // Sample concrete points inside the box; every result must lie in bounds.
  for (int i = 0; i < 50; ++i) {
    const double a = rng.UniformDouble(a_lo, a_hi);
    const double b = rng.UniformDouble(b_lo, b_hi);
    auto v = concrete_eval.EvalSampled(
        "f", {Value::Number(a), Value::Number(b)}, {}, rng);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    const double joules = v->energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-12)
        << "a=" << a << " b=" << b;
    EXPECT_LE(joules, bounds->hi_joules + 1e-12)
        << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, IntervalSoundnessTest,
                         ::testing::Range(0, 12));

// Loop trip counts driven by an ECV must also be covered.
TEST(IntervalSoundnessTest, EcvDrivenLoopCovered) {
  const Program p = MustParse(R"(
interface f() {
  ecv reps ~ uniform_int(1, 4);
  let mut total = 0J;
  for i in 0..reps { total = total + 3mJ; }
  return total;
}
)");
  IntervalEvaluator interval_eval(p);
  auto bounds = interval_eval.EvalInterval("f", {});
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();
  EXPECT_NEAR(bounds->lo_joules, 3e-3, 1e-12);
  EXPECT_NEAR(bounds->hi_joules, 12e-3, 1e-12);

  Evaluator concrete_eval(p);
  auto outcomes = concrete_eval.Enumerate("f", {}, {});
  ASSERT_TRUE(outcomes.ok());
  for (const auto& o : *outcomes) {
    const double joules = o.value.energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-12);
    EXPECT_LE(joules, bounds->hi_joules + 1e-12);
  }
}

}  // namespace
}  // namespace eclarity
