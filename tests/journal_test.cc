// Tests for the flight recorder (src/obs/journal.h) and the self-accounted
// telemetry budget (src/obs/budget.h): ring wraparound semantics, concurrent
// drain-while-record consistency (the TSan job runs this binary), journal
// bit-identity under single-threaded replay of a service workload, and the
// <1% steady-state overhead budget.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/lang/parser.h"
#include "src/obs/budget.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/svc/query_service.h"
#include "tests/parity_programs.h"

namespace eclarity {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// --- Ring buffer semantics --------------------------------------------------

TEST(JournalTest, RecordDrainRoundTrip) {
  Journal& journal = Journal::Global();
  journal.Clear();
  const uint64_t recorded_before = journal.TotalRecorded();

  journal.Record(JournalEventKind::kMark, 7, 9);
  journal.Record(JournalEventKind::kSnapshotSwap, 3, 1, /*t_ns=*/1000);
  journal.Record(JournalEventKind::kEval, 42, 0, /*t_ns=*/500, /*dur_ns=*/250);

  const std::vector<JournalEvent> events = journal.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(journal.TotalRecorded(), recorded_before + 3);

  // Same thread, history order.
  EXPECT_EQ(events[0].thread, events[2].thread);
  EXPECT_EQ(events[0].index + 1, events[1].index);
  EXPECT_EQ(events[1].index + 1, events[2].index);

  EXPECT_EQ(events[0].kind, JournalEventKind::kMark);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);
  EXPECT_NE(events[0].t_ns, 0u);  // stamped by Record
  EXPECT_EQ(events[0].dur_ns, 0u);

  EXPECT_EQ(events[1].kind, JournalEventKind::kSnapshotSwap);
  EXPECT_EQ(events[1].t_ns, 1000u);  // caller-provided timestamp kept

  EXPECT_EQ(events[2].kind, JournalEventKind::kEval);
  EXPECT_EQ(events[2].a, 42u);
  EXPECT_EQ(events[2].t_ns, 500u);
  EXPECT_EQ(events[2].dur_ns, 250u);
}

TEST(JournalTest, DisabledRecordsNothing) {
  Journal& journal = Journal::Global();
  journal.Clear();
  journal.SetEnabled(false);
  journal.Record(JournalEventKind::kMark, 1);
  EXPECT_TRUE(journal.Drain().empty());
  journal.SetEnabled(true);
  journal.Record(JournalEventKind::kMark, 2);
  EXPECT_EQ(journal.Drain().size(), 1u);
}

TEST(JournalTest, WraparoundDropsOldestKeepsNewest) {
  Journal& journal = Journal::Global();
  journal.Clear();
  const uint64_t dropped_before = journal.TotalDropped();

  constexpr uint64_t kExtra = 100;
  constexpr uint64_t kTotal = Journal::kRingCapacity + kExtra;
  for (uint64_t i = 0; i < kTotal; ++i) {
    journal.Record(JournalEventKind::kMark, i);
  }

  const std::vector<JournalEvent> events = journal.Drain();
  ASSERT_EQ(events.size(), Journal::kRingCapacity);
  // The newest kRingCapacity events survive; the oldest kExtra are gone.
  EXPECT_EQ(events.front().a, kExtra);
  EXPECT_EQ(events.back().a, kTotal - 1);
  // History indices are contiguous even across the wrap, so index gaps
  // after a Clear() reveal exactly how many events were dropped.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, events[i - 1].index + 1);
  }
  EXPECT_GE(journal.TotalDropped(), dropped_before + kExtra);
}

TEST(JournalTest, ConcurrentRecordAndDrainStaysConsistent) {
  Journal& journal = Journal::Global();
  journal.Clear();

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> start{false};
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        journal.Record(JournalEventKind::kMark, i, static_cast<uint64_t>(t));
      }
      // Stay alive until every writer is done: a thread that exits early
      // returns its ring to the pool, and a late-starting writer would
      // reuse (and overwrite) it, leaving fewer than kWriters rings.
      finished.fetch_add(1, std::memory_order_acq_rel);
      while (!release.load(std::memory_order_acquire)) {
      }
    });
  }
  start.store(true, std::memory_order_release);

  // Drain continuously while the writers hammer their rings. Torn slots
  // must be skipped, never surfaced with mixed payloads: every drained
  // event is a well-formed kMark with a coherent (a, b) pair.
  for (int round = 0; round < 50; ++round) {
    for (const JournalEvent& ev : journal.Drain()) {
      ASSERT_EQ(ev.kind, JournalEventKind::kMark);
      ASSERT_LT(ev.a, kPerWriter);
      ASSERT_LT(ev.b, static_cast<uint64_t>(kWriters));
    }
  }
  while (finished.load(std::memory_order_acquire) < kWriters) {
  }
  release.store(true, std::memory_order_release);
  for (std::thread& writer : writers) {
    writer.join();
  }

  // Quiesced: per-ring histories are strictly increasing, and each ring
  // retains exactly its newest kRingCapacity events.
  const std::vector<JournalEvent> events = journal.Drain();
  ASSERT_EQ(events.size(), kWriters * Journal::kRingCapacity);
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].thread == events[i - 1].thread) {
      EXPECT_EQ(events[i].index, events[i - 1].index + 1);
      EXPECT_EQ(events[i].a, events[i - 1].a + 1);
    }
  }
}

TEST(JournalTest, ChromeTraceExportIsWellFormed) {
  std::vector<JournalEvent> events;
  JournalEvent span;
  span.kind = JournalEventKind::kQuery;
  span.t_ns = 5000;
  span.dur_ns = 1500;
  span.a = 2;
  events.push_back(span);
  JournalEvent instant;
  instant.kind = JournalEventKind::kSnapshotSwap;
  instant.t_ns = 9000;
  events.push_back(instant);

  std::ostringstream out;
  WriteJournalChromeTrace(events, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"dur\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"snapshot_swap\""), std::string::npos);
}

// --- Service workload: replay determinism -----------------------------------

constexpr char kServiceSource[] = R"(
interface E_handle(n) {
  ecv hit ~ bernoulli(0.25);
  if (hit) {
    return n * 0.5nJ;
  } else {
    return n * 20nJ + 128 * 1.5nJ;
  }
}
)";

// Runs a fixed single-threaded mixed workload against a fresh service with
// every query sampled, and fingerprints the journal it leaves behind.
std::string RunWorkloadAndFingerprint() {
  Journal::Global().Clear();
  ObsSampler::ResetThread();

  QueryService::Options options;
  options.obs_sample_interval = 1;  // sample (and journal) every query
  options.mc_pool_threads = 1;
  auto service =
      QueryService::Create(MustParse(kServiceSource), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();

  EcvProfile updated;
  updated.SetBernoulli("hit", 0.75);
  for (int i = 0; i < 64; ++i) {
    if (i == 32) {
      // A mid-workload profile swap journals kRespecialize/kSnapshotSwap
      // and rekeys the fold cache — all deterministically.
      (*service)->UpdateProfile(updated);
    }
    Query query;
    query.interface = "E_handle";
    query.args = {Value::Number(64.0 + (i % 4) * 16.0)};
    if (i % 16 == 5) {
      query.kind = QueryKind::kMonteCarlo;
      query.seed = static_cast<uint64_t>(i);
      query.samples = 64;
    } else if (i % 8 == 0) {
      query.kind = QueryKind::kDistribution;
    } else {
      query.kind = QueryKind::kExpected;
    }
    auto outcome = (*service)->Dispatch(query);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  const std::vector<JournalEvent> events = Journal::Global().Drain();
  EXPECT_FALSE(events.empty());
  return JournalFingerprint(events);
}

TEST(JournalTest, SingleThreadedReplayIsBitIdentical) {
  const std::string first = RunWorkloadAndFingerprint();
  const std::string second = RunWorkloadAndFingerprint();
  EXPECT_EQ(first, second);
  // Sanity: the fingerprint reflects actual content, not emptiness.
  EXPECT_NE(first, JournalFingerprint({}));
}

// --- Telemetry overhead budget ----------------------------------------------

// The budget contract from the paper: telemetry must stay under 1% of
// steady-state service work. "Service work" here is serve-shaped mixed
// traffic against the Fig. 1 program — mostly cached expected-value
// queries with periodic distribution and Monte Carlo requests — the same
// mix `eilc serve` and BM_ServiceThroughput run, not a synthetic
// cheapest-possible query loop (a 130ns pure cache-hit stream is below
// the per-query cost of *any* instrumentation at a fixed ratio).
TEST(ObsBudgetTest, SteadyStateServiceOverheadUnderOnePercent) {
  QueryService::Options options;  // default obs_sample_interval
  auto service = QueryService::Create(MustParse(parity::kFig1Source), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto query_at = [](int i) {
    Query query;
    query.interface = "E_ml_webservice_handle";
    query.args = {Value::Number(50176.0 - (i % 8) * 512.0),
                  Value::Number(10000.0)};
    if (i % 32 == 0) {
      query.kind = QueryKind::kMonteCarlo;
      query.seed = static_cast<uint64_t>(i);
      query.samples = 128;
    } else if (i % 16 == 8) {
      query.kind = QueryKind::kDistribution;
    } else {
      query.kind = QueryKind::kExpected;
    }
    return query;
  };
  // Warm the fold cache so the measured region is steady-state traffic.
  for (int i = 0; i < 1024; ++i) {
    ASSERT_TRUE((*service)->Dispatch(query_at(i)).ok());
  }

  ObsBudget::Global().Reset();
  constexpr int kQueries = 100000;
  for (int i = 0; i < kQueries; ++i) {
    auto outcome = (*service)->Dispatch(query_at(i));
    ASSERT_TRUE(outcome.ok());
  }
  const double ratio = ObsBudget::Global().OverheadRatio();
  EXPECT_GT(ratio, 0.0);  // sampling actually happened
  EXPECT_LT(ratio, 0.01);

  // The ratio is exported as a gauge for scrapes.
  ObsBudget::Global().Publish();
  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(text.find("eclarity_obs_overhead_ratio"), std::string::npos);
}

}  // namespace
}  // namespace eclarity
