// Tests for the EIL front end: lexer, parser, printer, checker, values.

#include <gtest/gtest.h>

#include "src/lang/checker.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/lang/value.h"

namespace eclarity {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenisesBasics) {
  auto tokens = Tokenize("interface f(x) { return 1mJ; }");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. EOF
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInterface);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "f");
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kEnergy);
  EXPECT_DOUBLE_EQ((*tokens)[7].number, 1e-3);  // stored in Joules
  EXPECT_EQ(tokens->back().kind, TokenKind::kEndOfFile);
}

TEST(LexerTest, EnergyUnitSuffixes) {
  auto tokens = Tokenize("1J 2kJ 3mJ 4uJ 5nJ 6pJ");
  ASSERT_TRUE(tokens.ok());
  const double expected[] = {1.0, 2e3, 3e-3, 4e-6, 5e-9, 6e-12};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kEnergy);
    EXPECT_DOUBLE_EQ((*tokens)[i].number, expected[i]) << i;
  }
}

TEST(LexerTest, RejectsUnknownUnitSuffix) {
  auto tokens = Tokenize("3parsecs");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, ScientificNotationAndRangeAmbiguity) {
  auto tokens = Tokenize("1e3 2.5e-2 0..10");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 0.025);
  // `0..10` must lex as number, dotdot, number — not a float "0." .
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDotDot);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNumber);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("# a comment\n42 # trailing\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kEndOfFile);
}

TEST(LexerTest, StringsAndOperators) {
  auto tokens = Tokenize("au(\"relu\") >= <= == != && ||");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "relu");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kAndAnd);
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kOrOr);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
  EXPECT_FALSE(Tokenize("\"multi\nline\"").ok());
}

TEST(LexerTest, LoneAmpersandFails) {
  EXPECT_FALSE(Tokenize("a & b").ok());
  EXPECT_FALSE(Tokenize("a | b").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 3);
  EXPECT_EQ((*tokens)[2].column, 3);
}

// --- Parser ------------------------------------------------------------------

constexpr char kFig1Source[] = R"(
# The paper's Fig. 1, in EIL.
const max_response_len = 1024;

interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}

interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 5mJ * response_len;
  } else {
    return 100mJ * response_len;
  }
}

interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * E_conv2d(image_size - n_zeros) +
         8 * E_relu(n_embedding) +
         16 * E_mlp(n_embedding);
}

interface E_conv2d(n) { return au("conv2d", n); }
interface E_relu(n) { return au("relu", n); }
interface E_mlp(n) { return au("mlp", n); }
)";

TEST(ParserTest, ParsesFig1) {
  auto program = ParseProgram(kFig1Source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->interfaces().size(), 6u);
  EXPECT_EQ(program->consts().size(), 1u);
  ASSERT_NE(program->FindInterface("E_cache_lookup"), nullptr);
  EXPECT_EQ(program->FindInterface("E_cache_lookup")->params.size(), 2u);
  EXPECT_TRUE(program->UnresolvedCallees().empty());
}

TEST(ParserTest, ElseIfChains) {
  auto program = ParseProgram(R"(
interface f(x) {
  if (x < 1) { return 1J; }
  else if (x < 2) { return 2J; }
  else { return 3J; }
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(CheckProgramOk(*program).ok());
}

TEST(ParserTest, ForLoopAndMutation) {
  auto program = ParseProgram(R"(
interface f(n) {
  let mut total = 0J;
  for i in 0..n {
    total = total + 2mJ;
  }
  return total;
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(CheckProgramOk(*program).ok());
}

TEST(ParserTest, TernaryAndPrecedence) {
  auto expr = ParseExpression("a + b * c < d ? x : y + 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kConditional);
  // a + b * c parses as a + (b * c).
  auto sum = ParseExpression("a + b * c");
  ASSERT_TRUE(sum.ok());
  const auto& bin = static_cast<const BinaryExpr&>(**sum);
  EXPECT_EQ(bin.op, BinaryOp::kAdd);
  EXPECT_EQ(bin.rhs->kind, ExprKind::kBinary);
}

TEST(ParserTest, EcvDistributions) {
  auto program = ParseProgram(R"(
interface f(x) {
  ecv a ~ bernoulli(0.5);
  ecv b ~ uniform_int(1, 4);
  ecv c ~ categorical(1: 0.2, 2: 0.3, 3: 0.5);
  return (a ? 1.0 : 2.0) * b * c * 1mJ;
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
}

TEST(ParserTest, ReportsErrorsWithPosition) {
  auto program = ParseProgram("interface f( { return 1J; }");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("parse error"), std::string::npos);
}

TEST(ParserTest, DuplicateDeclarationRejected) {
  auto program = ParseProgram(
      "interface f(x) { return 1J; } interface f(y) { return 2J; }");
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kAlreadyExists);
}

TEST(ParserTest, MissingSemicolonRejected) {
  EXPECT_FALSE(ParseProgram("interface f(x) { return 1J }").ok());
}

TEST(ParserTest, TrailingTokensAfterExpressionRejected) {
  EXPECT_FALSE(ParseExpression("1 + 2 3").ok());
}

TEST(ParserTest, ExternDeclarations) {
  auto program = ParseProgram(R"(
extern interface E_hw(a, b);
interface f(x) { return E_hw(x, x + 1) + 1mJ; }
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_NE(program->FindExtern("E_hw"), nullptr);
  EXPECT_EQ(program->FindExtern("E_hw")->params.size(), 2u);
  // Calls to externs are arity-checked; no allow_unresolved needed.
  EXPECT_TRUE(CheckProgram(*program).empty());
  // The extern still counts as an unresolved import until linked.
  const auto imports = program->UnresolvedCallees();
  ASSERT_EQ(imports.size(), 1u);
  EXPECT_EQ(imports[0], "E_hw");
}

TEST(ParserTest, ExternArityMismatchCaught) {
  auto program = ParseProgram(R"(
extern interface E_hw(a, b);
interface f(x) { return E_hw(x) + 1mJ; }
)");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].message().find("declared with 2"), std::string::npos);
}

TEST(ParserTest, ExternSatisfiedByMerge) {
  auto program = ParseProgram(R"(
extern interface E_hw(n);
interface f(x) { return E_hw(x); }
)");
  auto layer = ParseProgram("interface E_hw(n) { return n * 2mJ; }");
  ASSERT_TRUE(program.ok() && layer.ok());
  ASSERT_TRUE(program->Merge(*layer).ok());
  EXPECT_EQ(program->FindExtern("E_hw"), nullptr);  // consumed
  ASSERT_NE(program->FindInterface("E_hw"), nullptr);
  EXPECT_TRUE(program->UnresolvedCallees().empty());
}

TEST(ParserTest, ExternCollidesWithDefinition) {
  EXPECT_FALSE(ParseProgram(R"(
interface E_hw(n) { return 1J; }
extern interface E_hw(n);
)").ok());
  EXPECT_FALSE(ParseProgram(R"(
extern interface E_hw(n);
interface E_hw(n) { return 1J; }
)").ok());
  // Identical re-declaration is tolerated; conflicting arity is not.
  EXPECT_TRUE(ParseProgram(R"(
extern interface E_hw(n);
extern interface E_hw(n);
)").ok());
  EXPECT_FALSE(ParseProgram(R"(
extern interface E_hw(n);
extern interface E_hw(n, m);
)").ok());
}

TEST(PrinterTest, ExternsRoundTrip) {
  auto program = ParseProgram(R"(
extern interface E_hw(a, b);
interface f(x) { return E_hw(x, 1) + 1mJ; }
)");
  ASSERT_TRUE(program.ok());
  const std::string once = PrintProgram(*program);
  EXPECT_NE(once.find("extern interface E_hw(a, b);"), std::string::npos);
  auto reparsed = ParseProgram(once);
  ASSERT_TRUE(reparsed.ok()) << once;
  EXPECT_EQ(PrintProgram(*reparsed), once);
}

// --- Printer round trip --------------------------------------------------------

TEST(PrinterTest, RoundTripIsStable) {
  auto program = ParseProgram(kFig1Source);
  ASSERT_TRUE(program.ok());
  const std::string once = PrintProgram(*program);
  auto reparsed = ParseProgram(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << once;
  const std::string twice = PrintProgram(*reparsed);
  EXPECT_EQ(once, twice);
}

TEST(PrinterTest, PreservesEnergyUnits) {
  auto program = ParseProgram("interface f(n) { return 5mJ * n; }");
  ASSERT_TRUE(program.ok());
  const std::string text = PrintProgram(*program);
  EXPECT_NE(text.find("5mJ"), std::string::npos);
}

TEST(PrinterTest, ParenthesisationPreservesSemantics) {
  // (a + b) * c must keep its parens; a + (b * c) must not gain any.
  auto e1 = ParseExpression("(a + b) * c");
  auto e2 = ParseExpression("a + b * c");
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_EQ(PrintExpr(**e1), "(a + b) * c");
  EXPECT_EQ(PrintExpr(**e2), "a + b * c");
}

TEST(PrinterTest, ElseIfRendering) {
  auto program = ParseProgram(R"(
interface f(x) {
  if (x < 1) { return 1J; } else if (x < 2) { return 2J; } else { return 3J; }
}
)");
  ASSERT_TRUE(program.ok());
  const std::string text = PrintProgram(*program);
  EXPECT_NE(text.find("else if"), std::string::npos);
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << text;
}

// --- Checker -----------------------------------------------------------------

TEST(CheckerTest, AcceptsWellFormedProgram) {
  auto program = ParseProgram(kFig1Source);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(CheckProgram(*program).empty());
}

TEST(CheckerTest, UndefinedVariable) {
  auto program = ParseProgram("interface f(x) { return y * 1J; }");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].message().find("undefined name 'y'"),
            std::string::npos);
}

TEST(CheckerTest, AssignmentToImmutable) {
  auto program = ParseProgram(
      "interface f(x) { let a = 1; a = 2; return 1J; }");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].message().find("immutable"), std::string::npos);
}

TEST(CheckerTest, MissingReturnOnSomePath) {
  auto program = ParseProgram(
      "interface f(x) { if (x > 0) { return 1J; } }");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].message().find("not all paths"), std::string::npos);
}

TEST(CheckerTest, ReturnInsideLoopDoesNotGuaranteeReturn) {
  auto program = ParseProgram(
      "interface f(n) { for i in 0..n { return 1J; } }");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(CheckProgram(*program).empty());
}

TEST(CheckerTest, UnreachableAfterReturn) {
  auto program = ParseProgram(
      "interface f(x) { return 1J; let a = 2; return 2J; }");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].message().find("unreachable"), std::string::npos);
}

TEST(CheckerTest, CallArityMismatch) {
  auto program = ParseProgram(R"(
interface g(a, b) { return 1J; }
interface f(x) { return g(x); }
)");
  ASSERT_TRUE(program.ok());
  const auto problems = CheckProgram(*program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].message().find("passes 1 arguments"),
            std::string::npos);
}

TEST(CheckerTest, UndefinedCalleeUnlessAllowed) {
  auto program = ParseProgram("interface f(x) { return E_hw(x); }");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(CheckProgram(*program).empty());
  CheckOptions options;
  options.allow_unresolved.insert("E_hw");
  EXPECT_TRUE(CheckProgram(*program, options).empty());
  CheckOptions any;
  any.allow_any_unresolved = true;
  EXPECT_TRUE(CheckProgram(*program, any).empty());
}

TEST(CheckerTest, DuplicateEcv) {
  auto program = ParseProgram(R"(
interface f(x) {
  ecv hit ~ bernoulli(0.5);
  if (x > 0) { let y = 1; }
  ecv hit ~ bernoulli(0.5);
  return 1J;
}
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(CheckProgram(*program).empty());
}

TEST(CheckerTest, CollectEcvNamesFindsNested) {
  auto program = ParseProgram(R"(
interface f(x) {
  ecv a ~ bernoulli(0.5);
  if (a) {
    ecv b ~ bernoulli(0.1);
    return b ? 1J : 2J;
  }
  for i in 0..3 {
    ecv c ~ bernoulli(0.2);
  }
  return 3J;
}
)");
  ASSERT_TRUE(program.ok());
  const auto names = CollectEcvNames(*program->FindInterface("f"));
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(CheckerTest, TransitiveCallees) {
  auto program = ParseProgram(kFig1Source);
  ASSERT_TRUE(program.ok());
  const auto callees = TransitiveCallees(*program, "E_ml_webservice_handle");
  EXPECT_EQ(callees.size(), 6u);
  EXPECT_TRUE(callees.count("E_relu") > 0);
  EXPECT_TRUE(callees.count("E_cache_lookup") > 0);
}

// --- Values -------------------------------------------------------------------

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Number(1.0).is_number());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Joules(1.0).is_energy());
  EXPECT_FALSE(Value::Number(1.0).AsBool().ok());
  EXPECT_FALSE(Value::Bool(true).AsEnergy().ok());
}

TEST(ValueTest, EnergyArithmetic) {
  const Value a = Value::Joules(2.0);
  const Value b = Value::Joules(0.5);
  auto sum = ApplyBinary(BinaryOp::kAdd, a, b, "t");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->energy().concrete().joules(), 2.5);
  auto scaled = ApplyBinary(BinaryOp::kMul, a, Value::Number(3.0), "t");
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ(scaled->energy().concrete().joules(), 6.0);
  auto ratio = ApplyBinary(BinaryOp::kDiv, a, b, "t");
  ASSERT_TRUE(ratio.ok());
  EXPECT_DOUBLE_EQ(ratio->number(), 4.0);
}

TEST(ValueTest, DimensionErrorsRejected) {
  const Value e = Value::Joules(1.0);
  const Value n = Value::Number(2.0);
  EXPECT_FALSE(ApplyBinary(BinaryOp::kAdd, e, n, "t").ok());
  EXPECT_FALSE(ApplyBinary(BinaryOp::kMul, e, e, "t").ok());
  EXPECT_FALSE(ApplyBinary(BinaryOp::kLt, e, n, "t").ok());
  EXPECT_FALSE(ApplyBinary(BinaryOp::kAnd, n, n, "t").ok());
}

TEST(ValueTest, DivisionByZero) {
  EXPECT_FALSE(
      ApplyBinary(BinaryOp::kDiv, Value::Number(1.0), Value::Number(0.0), "t")
          .ok());
  EXPECT_FALSE(
      ApplyBinary(BinaryOp::kMod, Value::Number(1.0), Value::Number(0.0), "t")
          .ok());
}

TEST(ValueTest, AbstractEnergyComparisonRejected) {
  const Value relu = Value::EnergyValue(AbstractEnergy::Unit("relu", 2.0));
  EXPECT_FALSE(ApplyBinary(BinaryOp::kLt, relu, relu, "t").ok());
  // Equality on identical abstract terms is fine.
  auto eq = ApplyBinary(BinaryOp::kEq, relu, relu, "t");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->boolean());
}

TEST(ValueTest, UnaryOps) {
  auto neg = ApplyUnary(UnaryOp::kNeg, Value::Joules(2.0), "t");
  ASSERT_TRUE(neg.ok());
  EXPECT_DOUBLE_EQ(neg->energy().concrete().joules(), -2.0);
  auto not_v = ApplyUnary(UnaryOp::kNot, Value::Bool(false), "t");
  ASSERT_TRUE(not_v.ok());
  EXPECT_TRUE(not_v->boolean());
  EXPECT_FALSE(ApplyUnary(UnaryOp::kNeg, Value::Bool(true), "t").ok());
  EXPECT_FALSE(ApplyUnary(UnaryOp::kNot, Value::Number(1.0), "t").ok());
}

}  // namespace
}  // namespace eclarity
