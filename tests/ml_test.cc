// Tests for the ML cost models, calibration, and the GPT-2 interface
// generator — including the end-to-end prediction-accuracy property that
// underlies Table 1.

#include <cmath>

#include <gtest/gtest.h>

#include "src/hw/counters.h"
#include "src/iface/energy_interface.h"
#include "src/lang/parser.h"
#include "src/ml/calibrate.h"
#include "src/ml/cnn.h"
#include "src/ml/gpt2.h"
#include "src/ml/gpt2_iface.h"
#include "src/util/stats.h"

namespace eclarity {
namespace {

TEST(Gpt2ModelTest, ParamCountMatchesGpt2Small) {
  Gpt2Model model;
  // GPT-2 small is ~124M parameters.
  EXPECT_NEAR(static_cast<double>(model.ParamCount()), 124e6, 3e6);
}

TEST(Gpt2ModelTest, ParamCountsAcrossModelFamily) {
  EXPECT_NEAR(
      static_cast<double>(Gpt2Model(Gpt2Config::Medium355M()).ParamCount()),
      355e6, 8e6);
  EXPECT_NEAR(
      static_cast<double>(Gpt2Model(Gpt2Config::Large774M()).ParamCount()),
      774e6, 15e6);
}

TEST(Gpt2ModelTest, LargerModelsCostMoreEverywhere) {
  const int ctx = 64;
  auto totals = [&](const Gpt2Config& config) {
    KernelStats t;
    for (const KernelStats& k : Gpt2Model(config).DecodeStepKernels(ctx)) {
      t += k;
    }
    return t;
  };
  const KernelStats small = totals(Gpt2Config::Small124M());
  const KernelStats medium = totals(Gpt2Config::Medium355M());
  const KernelStats large = totals(Gpt2Config::Large774M());
  EXPECT_LT(small.instructions, medium.instructions);
  EXPECT_LT(medium.instructions, large.instructions);
  EXPECT_LT(small.vram_sectors, medium.vram_sectors);
  EXPECT_LT(medium.vram_sectors, large.vram_sectors);
}

TEST(Gpt2ModelTest, DecodeCountsLinearInContext) {
  Gpt2Model model;
  auto totals = [&](int ctx) {
    KernelStats t;
    for (const KernelStats& k : model.DecodeStepKernels(ctx)) {
      t += k;
    }
    return t;
  };
  const KernelStats a = totals(100);
  const KernelStats b = totals(200);
  const KernelStats c = totals(300);
  // Second difference of a linear function is zero.
  EXPECT_NEAR(c.instructions - b.instructions,
              b.instructions - a.instructions,
              1e-6 * b.instructions);
  EXPECT_NEAR(c.vram_sectors - b.vram_sectors, b.vram_sectors - a.vram_sectors,
              1e-6 * b.vram_sectors);
}

TEST(Gpt2ModelTest, PrefillCountsQuadraticInPrompt) {
  Gpt2Model model;
  auto instr = [&](int p) {
    double total = 0.0;
    for (const KernelStats& k : model.PrefillKernels(p)) {
      total += k.instructions;
    }
    return total;
  };
  // Third difference of a quadratic is zero.
  const double d1 = instr(200) - instr(100);
  const double d2 = instr(300) - instr(200);
  const double d3 = instr(400) - instr(300);
  EXPECT_NEAR((d3 - d2) - (d2 - d1), 0.0, 1e-5 * d2);
  // And it is genuinely quadratic (second difference nonzero).
  EXPECT_GT(d2 - d1, 0.0);
}

TEST(Gpt2ModelTest, DecodeStepReadsAllWeightsOnce) {
  Gpt2Model model;
  KernelStats totals;
  for (const KernelStats& k : model.DecodeStepKernels(64)) {
    totals += k;
  }
  const double weight_bytes = static_cast<double>(model.ParamCount()) *
                              model.config().bytes_per_param;
  const double traffic_bytes = totals.vram_sectors * 32.0;
  // VRAM traffic is dominated by streaming the weights (within 2x).
  EXPECT_GT(traffic_bytes, weight_bytes * 0.9);
  EXPECT_LT(traffic_bytes, weight_bytes * 2.0);
}

TEST(Gpt2ModelTest, GenerationTotalsAccumulate) {
  Gpt2Model model;
  const KernelStats g = model.GenerationTotals(16, 10);
  KernelStats manual;
  for (const KernelStats& k : model.PrefillKernels(16)) {
    manual += k;
  }
  for (int t = 0; t < 10; ++t) {
    for (const KernelStats& k : model.DecodeStepKernels(16 + t)) {
      manual += k;
    }
  }
  EXPECT_DOUBLE_EQ(g.instructions, manual.instructions);
  EXPECT_DOUBLE_EQ(g.vram_sectors, manual.vram_sectors);
}

TEST(RunGenerationTest, ExecutesAndMeasures) {
  Gpt2Model model;
  GpuDevice device(Rtx4090LikeProfile(), 1);
  NvmlCounter counter(device);
  const GenerationRun run = RunGeneration(model, device, counter, 8, 5);
  EXPECT_GT(run.kernels_executed, 100);
  EXPECT_GT(run.duration.seconds(), 0.0);
  EXPECT_GT(run.true_energy.joules(), 0.0);
  // Energy-counter telemetry should track truth closely.
  EXPECT_NEAR(run.measured_energy.joules() / run.true_energy.joules(), 1.0,
              0.05);
}

// --- Calibration ---------------------------------------------------------------

TEST(CalibrateTest, RecoversCoefficientsOnAccurateTelemetry) {
  const GpuProfile profile = Rtx4090LikeProfile();
  auto result = CalibrateGpu(profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->r_squared, 0.999);
  EXPECT_NEAR(result->coefficients.instruction_joules,
              profile.energy_per_instruction.joules(),
              0.15 * profile.energy_per_instruction.joules());
  EXPECT_NEAR(result->coefficients.vram_sector_joules,
              profile.energy_per_vram_sector.joules(),
              0.15 * profile.energy_per_vram_sector.joules());
  EXPECT_NEAR(result->coefficients.static_watts, profile.static_power.watts(),
              0.05 * profile.static_power.watts());
}

TEST(CalibrateTest, WorksThroughPowerSampling) {
  const GpuProfile profile = Rtx3070LikeProfile();
  auto result = CalibrateGpu(profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Sampling telemetry is coarser; coefficients land within ~25%.
  EXPECT_GT(result->r_squared, 0.99);
  EXPECT_NEAR(result->coefficients.vram_sector_joules,
              profile.energy_per_vram_sector.joules(),
              0.25 * profile.energy_per_vram_sector.joules());
  EXPECT_GE(result->coefficients.instruction_joules, 0.0);
}

TEST(CalibrateTest, RejectsBadOptions) {
  CalibrationOptions options;
  options.sizes_per_pattern = 0;
  EXPECT_FALSE(CalibrateGpu(Rtx4090LikeProfile(), options).ok());
}

// --- GPT-2 interface generator ---------------------------------------------------

TEST(Gpt2IfaceTest, ClosedFormsMatchCostModelCounts) {
  Gpt2Model model;
  const GpuProfile profile = Rtx4090LikeProfile();
  auto program = Gpt2EnergyInterface(model, profile);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Link against an "identity" hardware interface that charges 1 J per
  // instruction only, so evaluating the interface reads back the count.
  auto probe = EnergyInterface::FromProgram(
      program->Clone(), "E_gpt2_step", {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(probe.ok());
  auto hw = ParseProgram(R"(
interface E_gpu_kernel(instructions, l1_wavefronts, l2_sectors, vram_sectors, duration_s) {
  return instructions * 1J;
}
interface E_gpu_idle(duration_s) { return 0J; }
)");
  ASSERT_TRUE(hw.ok());
  auto linked = probe->Link(*hw);
  ASSERT_TRUE(linked.ok());

  for (int ctx : {1, 17, 239, 1023}) {
    double expected = 0.0;
    for (const KernelStats& k : model.DecodeStepKernels(ctx)) {
      expected += k.instructions;
    }
    auto v = linked->Expected({Value::Number(static_cast<double>(ctx))});
    ASSERT_TRUE(v.ok());
    EXPECT_NEAR(v->joules(), expected, 1e-6 * expected) << "ctx=" << ctx;
  }
}

TEST(Gpt2IfaceTest, PrefillQuadraticMatches) {
  Gpt2Model model;
  auto program = Gpt2EnergyInterface(model, Rtx4090LikeProfile());
  ASSERT_TRUE(program.ok());
  auto hw = ParseProgram(R"(
interface E_gpu_kernel(instructions, l1_wavefronts, l2_sectors, vram_sectors, duration_s) {
  return vram_sectors * 1J;
}
interface E_gpu_idle(duration_s) { return 0J; }
)");
  ASSERT_TRUE(hw.ok());
  auto probe = EnergyInterface::FromProgram(
      program->Clone(), "E_gpt2_prefill", {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(probe.ok());
  auto linked = probe->Link(*hw);
  ASSERT_TRUE(linked.ok());
  for (int p : {4, 100, 700}) {
    double expected = 0.0;
    for (const KernelStats& k : model.PrefillKernels(p)) {
      expected += k.vram_sectors;
    }
    auto v = linked->Expected({Value::Number(static_cast<double>(p))});
    ASSERT_TRUE(v.ok());
    EXPECT_NEAR(v->joules(), expected, 1e-6 * expected) << "p=" << p;
  }
}

// The Table-1 property at test scale: interface prediction through the full
// calibration + telemetry pipeline lands within 10% of measurement.
class Gpt2AccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(Gpt2AccuracyTest, PredictionWithinTenPercent) {
  const int tokens = GetParam();
  const GpuProfile profile = Rtx4090LikeProfile();
  Gpt2Model model;

  auto calibration = CalibrateGpu(profile);
  ASSERT_TRUE(calibration.ok());
  auto gpt2 = Gpt2EnergyInterface(model, profile);
  auto hw = GpuEnergyInterface(profile.name, calibration->coefficients);
  ASSERT_TRUE(gpt2.ok() && hw.ok());
  auto iface = EnergyInterface::FromProgram(
      std::move(*gpt2), "E_gpt2_generate", {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(iface.ok());
  auto linked = iface->Link(*hw);
  ASSERT_TRUE(linked.ok());

  GpuDevice device(profile, 1234 + static_cast<uint64_t>(tokens));
  NvmlCounter counter(device);
  const GenerationRun run = RunGeneration(model, device, counter, 16, tokens);
  auto predicted = linked->Expected(
      {Value::Number(16.0), Value::Number(static_cast<double>(tokens))});
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_LT(
      RelativeError(predicted->joules(), run.measured_energy.joules()), 0.10)
      << "predicted " << predicted->joules() << " measured "
      << run.measured_energy.joules();
}

INSTANTIATE_TEST_SUITE_P(TokenBudgets, Gpt2AccuracyTest,
                         ::testing::Values(5, 20, 60, 120));

// --- CNN -------------------------------------------------------------------------

TEST(CnnModelTest, KernelStructureMatchesFig1) {
  CnnModel model;
  const auto kernels = model.InferenceKernels(50176.0, 10000.0);
  int conv = 0;
  int relu = 0;
  int mlp = 0;
  for (const KernelStats& k : kernels) {
    if (k.name == "conv2d") {
      ++conv;
    } else if (k.name == "relu") {
      ++relu;
    } else if (k.name == "mlp") {
      ++mlp;
    }
  }
  EXPECT_EQ(conv, 8);
  EXPECT_EQ(relu, 8);
  EXPECT_EQ(mlp, 16);
}

TEST(CnnModelTest, ZerosReduceConvWorkOnly) {
  CnnModel model;
  auto instr_total = [&](double zeros) {
    double total = 0.0;
    for (const KernelStats& k : model.InferenceKernels(50176.0, zeros)) {
      total += k.instructions;
    }
    return total;
  };
  EXPECT_GT(instr_total(0.0), instr_total(25000.0));
  // Fully-zero image: only relu+mlp work remains.
  const double floor_instr = instr_total(50176.0);
  EXPECT_GT(floor_instr, 0.0);
  EXPECT_DOUBLE_EQ(instr_total(60000.0), floor_instr);  // clamped
}

TEST(CnnModelTest, AbstractCostMatchesFig1Formula) {
  CnnModel model;
  const AbstractEnergy cost = model.AbstractCost(50176.0, 10000.0);
  EXPECT_DOUBLE_EQ(cost.Coefficient("conv2d"), 8.0 * (50176.0 - 10000.0));
  EXPECT_DOUBLE_EQ(cost.Coefficient("relu"), 8.0 * 256.0);
  EXPECT_DOUBLE_EQ(cost.Coefficient("mlp"), 16.0 * 256.0);
}

}  // namespace
}  // namespace eclarity
