// Tests for the observability layer: metrics registry, evaluation tracing,
// the prediction-accuracy audit trail, the pluggable log sink, and energy
// provenance (including its agreement with SystemStack::AttributeByLayer).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/eval/interp.h"
#include "src/hw/vendor.h"
#include "src/iface/energy_interface.h"
#include "src/lang/parser.h"
#include "src/ml/gpt2.h"
#include "src/ml/gpt2_iface.h"
#include "src/obs/accuracy.h"
#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/stack/stack.h"
#include "src/util/json.h"
#include "src/util/logging.h"

namespace eclarity {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// --- Metrics registry ------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test_events_total", "events");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge& g = registry.GetGauge("test_level", "level");
  g.Set(2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsTest, HistogramBucketsAndCumulativeCounts) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test_latency", "latency",
                                       ExponentialBuckets(1.0, 10.0, 3));
  // bounds: 1, 10, 100; +inf implicit.
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(5000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5055.5);
  const std::vector<uint64_t> cumulative = h.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);
  EXPECT_EQ(cumulative[3], 4u);
}

TEST(MetricsTest, JsonAndPrometheusExports) {
  MetricsRegistry registry;
  registry.GetCounter("test_hits_total", "hit count").Increment(7);
  registry.GetGauge("test_ratio", "a ratio").Set(0.25);
  registry.GetHistogram("test_sizes", "sizes", {1.0, 2.0}).Observe(1.5);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"test_hits_total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_hits_total counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_hits_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_ratio gauge"), std::string::npos);
  EXPECT_NE(prom.find("test_sizes_count 1"), std::string::npos);
}

TEST(MetricsTest, KindClashReturnsDummyAndKeepsOriginal) {
  MetricsRegistry registry;
  registry.GetCounter("test_metric", "a counter").Increment(3);
  // Asking for the same name as a gauge must not corrupt the counter; the
  // returned dummy is writable but unexported.
  Gauge& dummy = registry.GetGauge("test_metric", "oops");
  dummy.Set(99.0);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("test_metric 3"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("test_metric 99"), std::string::npos);
}

TEST(MetricsTest, ResetAllKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test_total", "");
  c.Increment(9);
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
}

// --- JSON escaping ---------------------------------------------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("tab\there\nnewline"), "tab\\there\\nnewline");
  EXPECT_EQ(JsonEscape(std::string("nul\x01middle")), "nul\\u0001middle");
  EXPECT_EQ(JsonEscape("\b\f\r"), "\\b\\f\\r");
  // UTF-8 passes through byte-for-byte (only ASCII controls are escaped).
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(MetricsTest, JsonExportEscapesMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\ncontrols", "").Increment();
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrols"), std::string::npos);
  // The raw quote must not survive unescaped inside the key.
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

// --- Latency histogram -----------------------------------------------------

TEST(LatencyHistogramTest, ExactBucketsBelowSixteen) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketValue(v), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneWithBoundedError) {
  size_t prev_idx = 0;
  for (uint64_t v = 1; v < (1ull << 40); v = v * 5 / 4 + 1) {
    const size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev_idx) << "v=" << v;
    prev_idx = idx;
    // The bucket midpoint is within one sub-bucket (~6%) of the value.
    const double mid = static_cast<double>(LatencyHistogram::BucketValue(idx));
    const double rel = std::abs(mid - static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LT(rel, 1.0 / LatencyHistogram::kSubBuckets) << "v=" << v;
  }
}

TEST(LatencyHistogramTest, QuantilesOnKnownPopulation) {
  LatencyHistogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_EQ(hist.SumNs(), 500500u);
  EXPECT_EQ(hist.MaxNs(), 1000u);
  // Quantiles come back as bucket midpoints: exact to within the ~6%
  // bucket resolution.
  EXPECT_NEAR(static_cast<double>(hist.QuantileNs(0.5)), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(hist.QuantileNs(0.9)), 900.0, 900.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(hist.QuantileNs(0.99)), 990.0, 990.0 * 0.07);
  EXPECT_EQ(hist.QuantileNs(0.0), hist.QuantileNs(0.001));

  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.QuantileNs(0.5), 0u);
}

TEST(MetricsTest, LatencyExportsJsonAndPrometheusSummary) {
  MetricsRegistry registry;
  LatencyHistogram& hist =
      registry.GetLatencyHistogram("test_latency_ns", "query latency");
  for (uint64_t v = 100; v <= 200; ++v) {
    hist.Record(v);
  }
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"test_latency_ns\":{\"count\":101"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\":"), std::string::npos);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_latency_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_count 101"), std::string::npos);
}

// --- Tracing ---------------------------------------------------------------

constexpr char kTraceSource[] = R"(
interface E_entry(n) {
  ecv hit ~ bernoulli(0.25);
  if (hit) {
    return E_leaf(n);
  }
  return 2mJ * n;
}
interface E_leaf(n) {
  return 1uJ * n;
}
)";

TEST(TraceTest, FingerprintSeparatesDistinctEvents) {
  TraceEvent a;
  a.kind = TraceEventKind::kEnergyTerm;
  a.name = "E_x";
  a.value = Value::Number(1.0);
  TraceEvent b = a;
  EXPECT_EQ(TraceEventFingerprint(a), TraceEventFingerprint(b));
  b.value = Value::Number(2.0);
  EXPECT_NE(TraceEventFingerprint(a), TraceEventFingerprint(b));
  b = a;
  b.kind = TraceEventKind::kEcvDraw;
  EXPECT_NE(TraceEventFingerprint(a), TraceEventFingerprint(b));
}

TEST(TraceTest, TracedEnumerationEmitsSchema) {
  const Program program = MustParse(kTraceSource);
  RecordingTraceSink sink;
  EvalOptions options;
  options.trace = &sink;
  Evaluator evaluator(program, options);
  auto outcomes =
      evaluator.Enumerate("E_entry", {Value::Number(3.0)}, {});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(outcomes->size(), 2u);

  const std::vector<TraceEvent> events = sink.TakeEvents();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, TraceEventKind::kPathStart);
  size_t starts = 0, ends = 0, draws = 0, enters = 0, terms = 0, branches = 0;
  double probability_sum = 0.0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kPathStart: ++starts; break;
      case TraceEventKind::kPathEnd:
        ++ends;
        probability_sum += e.probability;
        break;
      case TraceEventKind::kEcvDraw: ++draws; break;
      case TraceEventKind::kInterfaceEnter: ++enters; break;
      case TraceEventKind::kEnergyTerm: ++terms; break;
      case TraceEventKind::kBranch: ++branches; break;
      default: break;
    }
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(draws, 2u);      // one draw per path
  EXPECT_EQ(enters, 3u);     // entry twice + leaf once
  EXPECT_EQ(terms, 2u);      // one term per path
  EXPECT_EQ(branches, 2u);   // the if statement, decided on each path
  EXPECT_NEAR(probability_sum, 1.0, 1e-12);

  // The rendering carries names and the draw's distribution.
  const std::string text = FormatTrace(events);
  EXPECT_NE(text.find("E_entry"), std::string::npos) << text;
  EXPECT_NE(text.find("E_entry.hit"), std::string::npos) << text;
}

TEST(TraceTest, TracingDoesNotChangeOutcomes) {
  const Program program = MustParse(kTraceSource);
  RecordingTraceSink sink;
  EvalOptions traced;
  traced.trace = &sink;
  Evaluator with(program, traced);
  Evaluator without(program);
  const std::vector<Value> args = {Value::Number(3.0)};
  auto a = with.EvalDistribution("E_entry", args, {});
  auto b = without.EvalDistribution("E_entry", args, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->Mean(), b->Mean());
  EXPECT_DOUBLE_EQ(a->Stddev(), b->Stddev());
}

TEST(TraceTest, ChromeTraceIsWellFormed) {
  const Program program = MustParse(kTraceSource);
  RecordingTraceSink sink;
  EvalOptions options;
  options.trace = &sink;
  Evaluator evaluator(program, options);
  ASSERT_TRUE(evaluator.Enumerate("E_entry", {Value::Number(3.0)}, {}).ok());

  std::ostringstream out;
  WriteChromeTrace(sink.TakeEvents(), "E_entry", out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') { ++i; } else if (c == '"') { in_string = false; }
      continue;
    }
    if (c == '"') { in_string = true; }
    if (c == '[' || c == '{') { ++depth; }
    if (c == ']' || c == '}') { --depth; }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- Accuracy monitor ------------------------------------------------------

TEST(AccuracyTest, TracksRelativeErrorStats) {
  AccuracyMonitor monitor(/*drift_threshold=*/0.10, /*window=*/4);
  monitor.Record("sim", 105.0, 100.0);  // 5% error
  monitor.Record("sim", 90.0, 100.0);   // 10% error
  const auto stats = monitor.Stats("sim");
  EXPECT_EQ(stats.samples, 2u);
  EXPECT_NEAR(stats.mean_abs_rel_error, 0.075, 1e-12);
  EXPECT_NEAR(stats.max_abs_rel_error, 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(stats.predicted_total_j, 195.0);
  EXPECT_DOUBLE_EQ(stats.measured_total_j, 200.0);
  EXPECT_FALSE(monitor.AnyDrift());
}

TEST(AccuracyTest, DriftAlarmTripsAndClears) {
  AccuracyMonitor monitor(/*drift_threshold=*/0.10, /*window=*/4);
  for (int i = 0; i < 4; ++i) {
    monitor.Record("drifty", 130.0, 100.0);  // 30% error
  }
  EXPECT_TRUE(monitor.Stats("drifty").drift_alarm);
  EXPECT_TRUE(monitor.AnyDrift());
  // Four accurate samples push the bad ones out of the window.
  for (int i = 0; i < 4; ++i) {
    monitor.Record("drifty", 101.0, 100.0);
  }
  EXPECT_FALSE(monitor.Stats("drifty").drift_alarm);
  EXPECT_FALSE(monitor.AnyDrift());
}

TEST(AccuracyTest, ZeroMeasuredCountsTowardTotalsOnly) {
  AccuracyMonitor monitor;
  monitor.Record("s", 5.0, 0.0);
  const auto stats = monitor.Stats("s");
  EXPECT_EQ(stats.samples, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_abs_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.predicted_total_j, 5.0);
}

TEST(AccuracyTest, QuarantineSkipsErrorStatsButCountsSamples) {
  AccuracyMonitor monitor(/*drift_threshold=*/0.10, /*window=*/4);
  monitor.Record("s", 100.0, 100.0);
  monitor.Quarantine("s");
  EXPECT_TRUE(monitor.IsQuarantined("s"));
  // Garbage while quarantined must not pollute error statistics or totals.
  monitor.Record("s", 100.0, 1e6);
  const auto stats = monitor.Stats("s");
  EXPECT_EQ(stats.samples, 2u);
  EXPECT_EQ(stats.quarantined_samples, 1u);
  EXPECT_TRUE(stats.quarantined);
  EXPECT_DOUBLE_EQ(stats.mean_abs_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.measured_total_j, 100.0);
  EXPECT_FALSE(stats.drift_alarm);
}

TEST(AccuracyTest, UnquarantineClearsTheDriftWindow) {
  AccuracyMonitor monitor(/*drift_threshold=*/0.10, /*window=*/4);
  for (int i = 0; i < 4; ++i) {
    monitor.Record("s", 130.0, 100.0);  // 30% error: alarm trips
  }
  EXPECT_TRUE(monitor.Stats("s").drift_alarm);
  monitor.Quarantine("s");
  monitor.Unquarantine("s");
  // The pre-quarantine window is stale evidence; healing starts clean.
  EXPECT_FALSE(monitor.IsQuarantined("s"));
  EXPECT_FALSE(monitor.Stats("s").drift_alarm);
  monitor.Record("s", 101.0, 100.0);
  EXPECT_FALSE(monitor.Stats("s").drift_alarm);
}

TEST(AccuracyTest, QuarantineShowsInReportAndExport) {
  AccuracyMonitor monitor;
  monitor.Record("flaky", 10.0, 10.0);
  monitor.Quarantine("flaky");
  EXPECT_NE(monitor.Report().find("[QUARANTINED]"), std::string::npos)
      << monitor.Report();
  MetricsRegistry registry;
  monitor.ExportTo(registry);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("eclarity_accuracy_flaky_quarantined"),
            std::string::npos)
      << prom;
}

TEST(AccuracyTest, ExportSanitizesSourceNames) {
  AccuracyMonitor monitor;
  monitor.Record("energy-interface", 1.0, 1.0);
  MetricsRegistry registry;
  monitor.ExportTo(registry);
  const std::string prom = registry.ToPrometheusText();
  // '-' is illegal in a Prometheus metric name; the exporter maps it to '_'.
  EXPECT_NE(prom.find("eclarity_accuracy_energy_interface_samples"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("energy-interface"), std::string::npos);
}

TEST(AccuracyTest, ReportListsSources) {
  AccuracyMonitor monitor;
  monitor.Record("webservice", 11.0, 10.0);
  const std::string report = monitor.Report();
  EXPECT_NE(report.find("webservice"), std::string::npos) << report;
}

// --- Log sink --------------------------------------------------------------

TEST(LoggingTest, SinkReceivesWholeRecords) {
  std::vector<std::string> records;
  SetLogSink([&records](LogSeverity, const std::string& record) {
    records.push_back(record);
  });
  const LogSeverity old_threshold = GetLogThreshold();
  SetLogThreshold(LogSeverity::kWarning);
  ECLARITY_LOG(Warning) << "first " << 1;
  ECLARITY_LOG(Info) << "suppressed";
  SetLogSink(nullptr);
  SetLogThreshold(old_threshold);

  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].find("first 1"), std::string::npos) << records[0];
  // One complete record, no embedded newline (single-write contract).
  EXPECT_EQ(records[0].find('\n'), std::string::npos);
}

// --- Provenance ------------------------------------------------------------

constexpr char kFig1Source[] = R"(
const max_response_len = 1024;
interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}
interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 0.001mJ * response_len;
  } else {
    return 0.1mJ * response_len;
  }
}
interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * (image_size - n_zeros) * 20nJ +
         8 * n_embedding * 0.1nJ +
         16 * n_embedding * 1.5nJ;
}
)";

TEST(ProvenanceTest, Fig1RootTotalMatchesExpectation) {
  const Program program = MustParse(kFig1Source);
  const std::vector<Value> args = {Value::Number(50176.0),
                                   Value::Number(10000.0)};
  auto tree = ComputeProvenance(program, "E_ml_webservice_handle", args, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  Evaluator evaluator(program);
  auto expected =
      evaluator.ExpectedEnergy("E_ml_webservice_handle", args, {});
  ASSERT_TRUE(expected.ok());

  EXPECT_DOUBLE_EQ(tree->expected_joules, expected->joules());
  // The composition is linear in its energy literals: the per-site deltas
  // partition the total and the tree reproduces it.
  EXPECT_NEAR(tree->attributed_joules, tree->expected_joules,
              1e-12 * tree->expected_joules + 1e-18);
  EXPECT_NEAR(tree->root.subtree_joules, tree->expected_joules,
              1e-12 * tree->expected_joules + 1e-18);
  EXPECT_EQ(tree->path_count, 3u);
  EXPECT_FALSE(tree->sites.empty());
  EXPECT_DOUBLE_EQ(tree->root.expected_calls, 1.0);

  const std::string rendering = RenderProvenanceTree(*tree);
  EXPECT_NE(rendering.find("E_ml_webservice_handle"), std::string::npos);
  EXPECT_NE(rendering.find("E_cnn_forward"), std::string::npos);
}

// The three-layer stack from tests/stack_test.cc: provenance per-layer sums
// must agree with the stack's own layer attribution, since both are exact
// ablation deltas on a literal-linear composition.
constexpr char kHw[] = R"(
interface E_cpu_op(n) { return n * 1nJ; }
interface E_mem_read(bytes) { return bytes * 0.1nJ; }
)";
constexpr char kRuntime[] = R"(
interface E_vm_dispatch(n_ops) {
  return E_cpu_op(n_ops * 12) + 2uJ;
}
)";
constexpr char kApp[] = R"(
interface E_handle_request(size) {
  ecv cached ~ bernoulli(0.5);
  if (cached) {
    return E_mem_read(size) + 1uJ;
  }
  return E_vm_dispatch(size * 4) + E_mem_read(size * 16) + 1uJ;
}
)";

TEST(ProvenanceTest, PerLayerSumsMatchStackAttribution) {
  SystemStack stack;
  ResourceManager hw("hardware");
  ASSERT_TRUE(hw.AddResource({"cpu+mem", MustParse(kHw)}).ok());
  ResourceManager runtime("runtime");
  ASSERT_TRUE(runtime.AddGlue(kRuntime).ok());
  ResourceManager app("application");
  ASSERT_TRUE(app.AddGlue(kApp).ok());
  ASSERT_TRUE(stack.AddLayer(std::move(hw)).ok());
  ASSERT_TRUE(stack.AddLayer(std::move(runtime)).ok());
  ASSERT_TRUE(stack.AddLayer(std::move(app)).ok());

  const std::vector<Value> args = {Value::Number(100.0)};
  auto by_layer = stack.AttributeByLayer("E_handle_request", args);
  ASSERT_TRUE(by_layer.ok()) << by_layer.status().ToString();

  auto iface = stack.Compose("E_handle_request");
  ASSERT_TRUE(iface.ok());
  auto tree = iface->Provenance(args, stack.CombinedPolicy());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  // Map each term site to the layer whose exported program owns it.
  auto owning_layer = [&stack](const std::string& owner) -> std::string {
    std::string name = owner;
    const bool is_const = owner.rfind("const:", 0) == 0;
    if (is_const) {
      name = owner.substr(6);
    }
    for (const ResourceManager& layer : stack.layers()) {
      auto exported = layer.ComposeExported();
      if (!exported.ok()) {
        continue;
      }
      if (is_const) {
        for (const ConstDecl& decl : exported->consts()) {
          if (decl.name == name) {
            return layer.name();
          }
        }
      } else if (exported->FindInterface(name) != nullptr) {
        return layer.name();
      }
    }
    return "";
  };

  for (const LayerContribution& contribution : *by_layer) {
    double provenance_sum = 0.0;
    for (const TermSite& site : tree->sites) {
      if (owning_layer(site.owner) == contribution.layer) {
        provenance_sum += site.delta_joules;
      }
    }
    EXPECT_NEAR(provenance_sum, contribution.own_energy.joules(), 1e-15)
        << contribution.layer;
  }
}

TEST(ProvenanceTest, Gpt2ProvenanceMatchesExpected) {
  const GpuProfile profile = Rtx4090LikeProfile();
  Gpt2Model model;
  auto gpt2 = Gpt2EnergyInterface(model, profile);
  ASSERT_TRUE(gpt2.ok()) << gpt2.status().ToString();
  auto hw = GpuVendorInterface(profile);
  ASSERT_TRUE(hw.ok());
  auto open_iface = EnergyInterface::FromProgram(
      std::move(*gpt2), "E_gpt2_generate", {"E_gpu_kernel", "E_gpu_idle"});
  ASSERT_TRUE(open_iface.ok()) << open_iface.status().ToString();
  auto iface = open_iface->Link(*hw);
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();

  const std::vector<Value> args = {Value::Number(16.0), Value::Number(50.0)};
  auto expected = iface->Expected(args);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto tree = iface->Provenance(args);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  EXPECT_DOUBLE_EQ(tree->expected_joules, expected->joules());
  EXPECT_NEAR(tree->attributed_joules + tree->unattributed_joules,
              tree->expected_joules, 1e-9 * std::abs(tree->expected_joules));
  EXPECT_FALSE(tree->sites.empty());
  EXPECT_GT(tree->root.subtree_joules, 0.0);
}

}  // namespace
}  // namespace eclarity
