// The engine-parity corpus: EIL programs (with entry + arguments) that every
// pair of evaluation engines must agree on. fastpath_test.cc replays it
// across {tree walk, fast path}; differential_test.cc replays the same
// corpus across {tree walk, fast path, analytic exact, analytic bounded,
// analytic moments}, so a program added here is automatically exercised by
// both harnesses.

#ifndef ECLARITY_TESTS_PARITY_PROGRAMS_H_
#define ECLARITY_TESTS_PARITY_PROGRAMS_H_

#include <vector>

namespace eclarity {
namespace parity {

struct ParityCase {
  const char* name;
  const char* source;
  const char* entry;
  std::vector<double> args;  // all corpus arguments are numbers
};

inline constexpr char kFig1Source[] = R"(
const max_response_len = 1024;
interface E_ml_webservice_handle(image_size, n_zeros) {
  ecv request_hit ~ bernoulli(0.3);
  if (request_hit) {
    return E_cache_lookup(image_size, max_response_len);
  } else {
    return E_cnn_forward(image_size, n_zeros);
  }
}
interface E_cache_lookup(key_size, response_len) {
  ecv local_cache_hit ~ bernoulli(0.8);
  if (local_cache_hit) {
    return 0.001mJ * response_len;
  } else {
    return 0.1mJ * response_len;
  }
}
interface E_cnn_forward(image_size, n_zeros) {
  let n_embedding = 256;
  return 8 * (image_size - n_zeros) * 20nJ +
         8 * n_embedding * 0.1nJ +
         16 * n_embedding * 1.5nJ;
}
)";

inline constexpr char kLoopsConstsBuiltinsSource[] = R"(
const k_iters = 4;
const k_unit = 2mJ;
interface f(x) {
  let mut total = 0J;
  for i in 0..k_iters {
    ecv spike ~ bernoulli(0.25);
    let step = spike ? k_unit * (i + 1) : k_unit;
    total = total + step;
  }
  return total + min(x, k_iters) * 1mJ;
}
)";

inline constexpr char kNestedCallsCategoricalSource[] = R"(
interface outer(n) {
  ecv tier ~ categorical(0: 0.5, 1: 0.3, 2: 0.2);
  return inner(tier) * n;
}
interface inner(tier) {
  ecv burst ~ uniform_int(1, 3);
  return (tier + 1) * burst * 1uJ;
}
)";

inline constexpr char kProfileOverrideSource[] = R"(
interface f() {
  ecv mode ~ bernoulli(0.5);
  return mode ? 1mJ : 2mJ;
}
)";

// A guarded-accumulator chain: the analytic exact engine's best case (every
// draw is an independent additive contribution), and still a useful
// fast-path parity program.
inline constexpr char kAccumulatorChainSource[] = R"(
interface acc_chain(n) {
  let mut acc = 0J;
  ecv hit0 ~ bernoulli(0.5);
  if (hit0) { acc = acc + 1mJ; }
  ecv tier ~ categorical(0: 0.25, 1: 0.5, 2: 0.25);
  acc = acc + tier * 2mJ;
  ecv burst ~ uniform_int(0, 3);
  acc = acc + burst * 100uJ;
  ecv hit1 ~ bernoulli(0.125);
  if (hit1) { acc = acc + n * 10uJ; } else { acc = acc + 3uJ; }
  return acc + n * 1uJ;
}
)";

// An affine wrapper stack over an accumulator core: exercises the analytic
// engines' call handling (scale/offset extraction, sub-distribution reuse).
inline constexpr char kAffineWrapperSource[] = R"(
interface wrap2(n) { return 2 * wrap1(n) + 5mJ; }
interface wrap1(n) { return wrap0(n) - 1mJ; }
interface wrap0(n) {
  let mut acc = 0J;
  ecv a ~ bernoulli(0.3);
  if (a) { acc = acc + 4mJ; }
  ecv b ~ uniform_int(1, 4);
  acc = acc + b * 1mJ;
  return acc;
}
)";

// The happy-path corpus (no profile overrides; those are built in the
// harnesses because EcvProfile is not constexpr-constructible).
inline const ParityCase kParityCorpus[] = {
    {"fig1_webservice", kFig1Source, "E_ml_webservice_handle",
     {50176.0, 10000.0}},
    {"loops_consts_builtins", kLoopsConstsBuiltinsSource, "f", {7.0}},
    {"nested_calls_categorical", kNestedCallsCategoricalSource, "outer",
     {2.0}},
    {"profile_override_base", kProfileOverrideSource, "f", {}},
    {"accumulator_chain", kAccumulatorChainSource, "acc_chain", {6.0}},
    {"affine_wrappers", kAffineWrapperSource, "wrap2", {3.0}},
};

// Programs whose evaluation must FAIL — with the same status code and
// message from every engine. Each hits a different failure path.
inline const ParityCase kErrorCorpus[] = {
    // Undefined variable.
    {"undefined_variable", "interface f(x) { return ghost + x; }", "f", {1.0}},
    // Call to an undefined interface.
    {"undefined_callee", "interface f(x) { return E_missing(x); }", "f",
     {1.0}},
    // Arity mismatch.
    {"arity_mismatch",
     "interface f(x) { return g(x, x); }\n"
     "interface g(a) { return a * 1J; }",
     "f",
     {1.0}},
    // Non-bool condition.
    {"non_bool_condition",
     "interface f(x) { if (x) { return 1J; } return 2J; }", "f", {1.0}},
    // Assignment to an immutable binding.
    {"immutable_assignment",
     "interface f(x) { let y = 1; y = 2; return y * 1J; }", "f", {1.0}},
    // Bernoulli parameter out of range.
    {"bernoulli_out_of_range",
     "interface f(p) { ecv e ~ bernoulli(p); return e ? 1J : 2J; }", "f",
     {1.5}},
    // Mixed-kind arithmetic.
    {"mixed_kind_arithmetic", "interface f(x) { return x + 1J; }", "f", {2.0}},
    // Unknown entry interface.
    {"unknown_entry", "interface f(x) { return x * 1J; }", "nope", {1.0}},
};

}  // namespace parity
}  // namespace eclarity

#endif  // ECLARITY_TESTS_PARITY_PROGRAMS_H_
