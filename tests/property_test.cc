// Property tests over randomly generated EIL programs.
//
// A generator produces well-formed random interfaces (typed expressions,
// ECVs, branches, bounded loops, nested helper calls); each parameterised
// test instance checks, on a fresh random program:
//
//   1. printer/parser round trip: Print(Parse(Print(p))) == Print(p), and
//      the reparsed program evaluates identically;
//   2. exact enumeration is a probability distribution (mass sums to 1);
//   3. interval evaluation at point inputs covers every enumerated outcome;
//   4. Monte Carlo sampling converges to the exact expectation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "src/dist/certified.h"
#include "src/eval/interp.h"
#include "src/eval/interval.h"
#include "src/lang/checker.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace eclarity {
namespace {

// ---------------------------------------------------------------------------
// Random program generator
// ---------------------------------------------------------------------------

class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  // Generates a program with 1-2 helper interfaces plus a root "f".
  Program Generate() {
    Program program;
    const int helpers = static_cast<int>(rng_.UniformInt(0, 2));
    for (int h = 0; h < helpers; ++h) {
      const std::string name = "helper" + std::to_string(h);
      (void)program.AddInterface(GenInterface(name, 1));
      callable_.push_back(name);
    }
    (void)program.AddInterface(GenInterface("f", 2));
    return program;
  }

 private:
  struct Scope {
    std::vector<std::string> nums;
    std::vector<std::string> bools;
  };

  ExprPtr NumLit() {
    // Small integers keep everything finite and loop bounds tame.
    return MakeNumber(static_cast<double>(rng_.UniformInt(0, 6)));
  }

  ExprPtr NonZeroNumLit() {
    return MakeNumber(static_cast<double>(rng_.UniformInt(1, 6)));
  }

  ExprPtr GenNum(const Scope& scope, int depth) {
    if (depth <= 0 || rng_.Bernoulli(0.3) || scope.nums.empty()) {
      if (!scope.nums.empty() && rng_.Bernoulli(0.5)) {
        return MakeVar(scope.nums[rng_.UniformUint64(scope.nums.size())]);
      }
      return NumLit();
    }
    switch (rng_.UniformInt(0, 4)) {
      case 0:
        return MakeBinary(BinaryOp::kAdd, GenNum(scope, depth - 1),
                          GenNum(scope, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kSub, GenNum(scope, depth - 1),
                          GenNum(scope, depth - 1));
      case 2:
        return MakeBinary(BinaryOp::kMul, GenNum(scope, depth - 1),
                          GenNum(scope, depth - 1));
      case 3:
        // Division only by nonzero literals.
        return MakeBinary(BinaryOp::kDiv, GenNum(scope, depth - 1),
                          NonZeroNumLit());
      default:
        return MakeConditional(GenBool(scope, depth - 1),
                               GenNum(scope, depth - 1),
                               GenNum(scope, depth - 1));
    }
  }

  ExprPtr GenBool(const Scope& scope, int depth) {
    if (depth <= 0 || rng_.Bernoulli(0.4)) {
      if (!scope.bools.empty() && rng_.Bernoulli(0.6)) {
        return MakeVar(scope.bools[rng_.UniformUint64(scope.bools.size())]);
      }
      return MakeBool(rng_.Bernoulli(0.5));
    }
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return MakeBinary(BinaryOp::kLt, GenNum(scope, depth - 1),
                          GenNum(scope, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kGe, GenNum(scope, depth - 1),
                          GenNum(scope, depth - 1));
      case 2:
        return MakeBinary(BinaryOp::kAnd, GenBool(scope, depth - 1),
                          GenBool(scope, depth - 1));
      default:
        return MakeUnary(UnaryOp::kNot, GenBool(scope, depth - 1));
    }
  }

  ExprPtr GenEnergy(const Scope& scope, int depth) {
    if (depth <= 0 || rng_.Bernoulli(0.35)) {
      // Positive literal in a sensible range.
      return MakeEnergyJoules(rng_.UniformDouble(1e-6, 1e-2));
    }
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return MakeBinary(BinaryOp::kAdd, GenEnergy(scope, depth - 1),
                          GenEnergy(scope, depth - 1));
      case 1:
        return MakeBinary(BinaryOp::kMul, GenNum(scope, depth - 1),
                          GenEnergy(scope, depth - 1));
      case 2:
        if (!callable_.empty()) {
          std::vector<ExprPtr> args;
          args.push_back(GenNum(scope, depth - 1));
          return MakeCall(callable_[rng_.UniformUint64(callable_.size())],
                          std::move(args));
        }
        [[fallthrough]];
      default:
        return MakeConditional(GenBool(scope, depth - 1),
                               GenEnergy(scope, depth - 1),
                               GenEnergy(scope, depth - 1));
    }
  }

  // acc = acc + <energy>
  StmtPtr Accumulate(const Scope& scope, int depth) {
    return MakeAssign("acc", MakeBinary(BinaryOp::kAdd, MakeVar("acc"),
                                        GenEnergy(scope, depth)));
  }

  void GenStmts(Block& block, Scope& scope, int depth, int budget) {
    for (int s = 0; s < budget; ++s) {
      switch (rng_.UniformInt(0, 4)) {
        case 0: {  // let
          const std::string name =
              "v" + std::to_string(fresh_counter_++);
          block.statements.push_back(
              MakeLet(name, GenNum(scope, depth), false));
          scope.nums.push_back(name);
          break;
        }
        case 1: {  // ecv
          const std::string name =
              "e" + std::to_string(fresh_counter_++);
          EcvDistSpec spec;
          spec.kind = EcvDistKind::kBernoulli;
          spec.params.push_back(
              MakeNumber(rng_.UniformDouble(0.1, 0.9)));
          block.statements.push_back(
              std::make_unique<EcvStmt>(name, std::move(spec)));
          scope.bools.push_back(name);
          break;
        }
        case 2: {  // if
          Block then_block;
          Scope then_scope = scope;
          then_block.statements.push_back(Accumulate(then_scope, depth - 1));
          std::optional<Block> else_block;
          if (rng_.Bernoulli(0.5)) {
            Block compiled;
            Scope else_scope = scope;
            compiled.statements.push_back(Accumulate(else_scope, depth - 1));
            else_block = std::move(compiled);
          }
          block.statements.push_back(std::make_unique<IfStmt>(
              GenBool(scope, depth), std::move(then_block),
              std::move(else_block)));
          break;
        }
        case 3: {  // for, small literal bound
          Block body;
          Scope body_scope = scope;
          const std::string var =
              "i" + std::to_string(fresh_counter_++);
          body_scope.nums.push_back(var);
          body.statements.push_back(Accumulate(body_scope, depth - 1));
          block.statements.push_back(std::make_unique<ForStmt>(
              var, MakeNumber(0.0),
              MakeNumber(static_cast<double>(rng_.UniformInt(0, 3))),
              std::move(body)));
          break;
        }
        default:
          block.statements.push_back(Accumulate(scope, depth));
          break;
      }
    }
  }

  InterfaceDecl GenInterface(const std::string& name, int arity) {
    InterfaceDecl decl;
    decl.name = name;
    Scope scope;
    for (int p = 0; p < arity; ++p) {
      const std::string param = "p" + std::to_string(p);
      decl.params.push_back(param);
      scope.nums.push_back(param);
    }
    Block body;
    body.statements.push_back(
        MakeLet("acc", MakeEnergyJoules(0.0), /*is_mut=*/true));
    GenStmts(body, scope, /*depth=*/3,
             /*budget=*/static_cast<int>(rng_.UniformInt(2, 5)));
    body.statements.push_back(MakeReturn(
        MakeBinary(BinaryOp::kAdd, MakeVar("acc"), GenEnergy(scope, 2))));
    decl.body = std::move(body);
    return decl;
  }

  Rng rng_;
  std::vector<std::string> callable_;
  int fresh_counter_ = 0;
};

class RandomProgramTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ProgramGenerator generator(0xbeef00 + static_cast<uint64_t>(GetParam()));
    program_ = generator.Generate();
    ASSERT_TRUE(CheckProgramOk(program_).ok())
        << PrintProgram(program_);
    args_ = {Value::Number(2.0), Value::Number(5.0)};
  }

  Program program_;
  std::vector<Value> args_;
};

TEST_P(RandomProgramTest, PrintParseRoundTrip) {
  const std::string once = PrintProgram(program_);
  auto reparsed = ParseProgram(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << once;
  EXPECT_EQ(PrintProgram(*reparsed), once);

  // Reparsed program evaluates identically.
  Evaluator a(program_);
  Evaluator b(*reparsed);
  auto da = a.EvalDistribution("f", args_, {});
  auto db = b.EvalDistribution("f", args_, {});
  ASSERT_TRUE(da.ok()) << da.status().ToString() << "\n" << once;
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(Distribution::Wasserstein1(*da, *db), 0.0, 1e-15) << once;
}

TEST_P(RandomProgramTest, EnumerationIsAProbabilityDistribution) {
  Evaluator evaluator(program_);
  auto outcomes = evaluator.Enumerate("f", args_, {});
  ASSERT_TRUE(outcomes.ok())
      << outcomes.status().ToString() << "\n" << PrintProgram(program_);
  double mass = 0.0;
  for (const WeightedOutcome& o : *outcomes) {
    EXPECT_GT(o.probability, 0.0);
    EXPECT_LE(o.probability, 1.0 + 1e-12);
    mass += o.probability;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9) << PrintProgram(program_);
}

TEST_P(RandomProgramTest, IntervalCoversAllOutcomes) {
  Evaluator evaluator(program_);
  IntervalEvaluator intervals(program_);
  auto outcomes = evaluator.Enumerate("f", args_, {});
  ASSERT_TRUE(outcomes.ok()) << PrintProgram(program_);
  auto bounds = intervals.EvalInterval(
      "f", {IntervalValue::NumberPoint(2.0), IntervalValue::NumberPoint(5.0)});
  ASSERT_TRUE(bounds.ok())
      << bounds.status().ToString() << "\n" << PrintProgram(program_);
  for (const WeightedOutcome& o : *outcomes) {
    const double joules = o.value.energy().concrete().joules();
    EXPECT_GE(joules, bounds->lo_joules - 1e-9) << PrintProgram(program_);
    EXPECT_LE(joules, bounds->hi_joules + 1e-9) << PrintProgram(program_);
  }
}

TEST_P(RandomProgramTest, MonteCarloConvergesToExact) {
  Evaluator evaluator(program_);
  auto exact = evaluator.ExpectedEnergy("f", args_, {});
  ASSERT_TRUE(exact.ok()) << PrintProgram(program_);
  Rng rng(0x5a5a + static_cast<uint64_t>(GetParam()));
  auto mc = evaluator.MonteCarloMean("f", args_, {}, rng, 4000);
  ASSERT_TRUE(mc.ok());
  // 4000 samples: generous tolerance scaled to the spread.
  auto dist = evaluator.EvalDistribution("f", args_, {});
  ASSERT_TRUE(dist.ok());
  const double slack = 5.0 * dist->Stddev() / std::sqrt(4000.0) + 1e-12;
  EXPECT_NEAR(mc->joules(), exact->joules(), slack) << PrintProgram(program_);
}

TEST_P(RandomProgramTest, CertifiedModesAgreeWithEnumeration) {
  // The analytic certified surface over the random-program family: exact
  // mode must be bit-identical to the enumeration fold (mostly through the
  // fallback on these loop-heavy programs — which is exactly the contract
  // under test), and the bounded mode's envelope must contain the exact
  // mean.
  const auto bits = [](double v) {
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  };
  Evaluator reference(program_);
  auto ref = reference.EvalCertified("f", args_, {});
  ASSERT_TRUE(ref.ok()) << ref.status().ToString() << "\n"
                        << PrintProgram(program_);
  EvalOptions exact_options;
  exact_options.dist_mode = DistMode::kAnalyticExact;
  Evaluator exact(program_, exact_options);
  auto got = exact.EvalCertified("f", args_, {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->exact) << PrintProgram(program_);
  EXPECT_EQ(bits(got->mean), bits(ref->mean)) << PrintProgram(program_);
  const auto& ra = ref->distribution.atoms();
  const auto& ga = got->distribution.atoms();
  ASSERT_EQ(ga.size(), ra.size()) << PrintProgram(program_);
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(bits(ga[i].value), bits(ra[i].value));
    EXPECT_EQ(bits(ga[i].probability), bits(ra[i].probability));
  }
  EvalOptions bounded_options;
  bounded_options.dist_mode = DistMode::kAnalyticBounded;
  Evaluator bounded(program_, bounded_options);
  auto approx = bounded.EvalCertified("f", args_, {});
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_LE(std::abs(ref->mean - approx->mean), approx->mean_error_bound)
      << PrintProgram(program_);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Certified distribution algebra (src/dist/certified.h)
// ---------------------------------------------------------------------------

std::vector<Atom> RandomAtoms(Rng& rng, size_t count) {
  std::vector<Atom> atoms;
  atoms.reserve(count);
  std::vector<double> weights;
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double w = 1.0 + static_cast<double>(rng.UniformInt(0, 9));
    weights.push_back(w);
    total += w;
  }
  for (size_t i = 0; i < count; ++i) {
    // A coarse value grid makes bit-equal collisions (the merge path)
    // likely.
    const double value = 0.5 * static_cast<double>(rng.UniformInt(0, 12));
    atoms.push_back({value, weights[i] / total});
  }
  return atoms;
}

CertifiedDist MustFromOutcomes(std::vector<Atom> atoms) {
  auto dist = CertifiedDist::FromOutcomes(std::move(atoms));
  EXPECT_TRUE(dist.ok()) << dist.status().ToString();
  return *dist;
}

class CertifiedAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(CertifiedAlgebraTest, ConvolutionCommutes) {
  Rng rng(0xc0aa + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const CertifiedDist a =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(6) + 1));
    const CertifiedDist b =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(6) + 1));
    const CertifiedDist ab = CertifiedDist::Convolve(a, b, 4096);
    const CertifiedDist ba = CertifiedDist::Convolve(b, a, 4096);
    // IEEE addition is commutative bitwise, so the supports agree exactly;
    // merged probabilities may differ by summation order only.
    ASSERT_EQ(ab.atoms().size(), ba.atoms().size());
    for (size_t i = 0; i < ab.atoms().size(); ++i) {
      EXPECT_EQ(ab.atoms()[i].value, ba.atoms()[i].value) << "atom " << i;
      EXPECT_NEAR(ab.atoms()[i].probability, ba.atoms()[i].probability,
                  1e-15);
    }
    EXPECT_NEAR(ab.Finalize().mean, ba.Finalize().mean, 1e-12);
  }
}

TEST_P(CertifiedAlgebraTest, ConvolutionAssociatesWithinSlack) {
  Rng rng(0xc0bb + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const CertifiedDist a =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(5) + 1));
    const CertifiedDist b =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(5) + 1));
    const CertifiedDist c =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(5) + 1));
    const CertifiedDistribution left =
        CertifiedDist::Convolve(CertifiedDist::Convolve(a, b, 4096), c, 4096)
            .Finalize();
    const CertifiedDistribution right =
        CertifiedDist::Convolve(a, CertifiedDist::Convolve(b, c, 4096), 4096)
            .Finalize();
    // Support values regroup (FP addition is not associative), so compare
    // the finalized summaries, not atom bits.
    const double scale = std::max(1.0, std::abs(left.mean));
    EXPECT_NEAR(left.mean, right.mean, 1e-12 * scale);
    EXPECT_NEAR(left.min_joules, right.min_joules, 1e-12 * scale);
    EXPECT_NEAR(left.max_joules, right.max_joules, 1e-12 * scale);
  }
}

TEST_P(CertifiedAlgebraTest, MomentsMatchCategorical) {
  Rng rng(0xc0cc + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Atom> atoms = RandomAtoms(rng, rng.UniformUint64(8) + 1);
    const CertifiedDistribution cd = MustFromOutcomes(atoms).Finalize();
    auto dist = Distribution::Categorical(std::move(atoms));
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_NEAR(cd.mean, dist->Mean(), 1e-12);
    EXPECT_NEAR(cd.variance, dist->Variance(), 1e-12);
    EXPECT_EQ(cd.min_joules, dist->MinValue());
    EXPECT_EQ(cd.max_joules, dist->MaxValue());
    // Exact input, no pruning: the bound is FP slack only.
    EXPECT_LE(cd.mean_error_bound, 1e-10);
    EXPECT_LE(std::abs(cd.mean - dist->Mean()), cd.mean_error_bound);
  }
}

TEST_P(CertifiedAlgebraTest, PruningBoundIsMonotoneInThreshold) {
  Rng rng(0xc0dd + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const CertifiedDist base =
        MustFromOutcomes(RandomAtoms(rng, rng.UniformUint64(10) + 2));
    double prev_bound = -1.0;
    double prev_pruned = -1.0;
    for (double threshold : {0.0, 1e-3, 1e-2, 0.05, 0.2, 0.5}) {
      CertifiedDist pruned = base;
      pruned.PruneBelow(threshold);
      const CertifiedDistribution cd = pruned.Finalize();
      // A larger threshold never prunes less mass or certifies a tighter
      // bound — the monotonicity the algebra documents.
      EXPECT_GE(pruned.pruned_mass(), prev_pruned) << "t=" << threshold;
      EXPECT_GE(cd.mean_error_bound, prev_bound) << "t=" << threshold;
      // And the bound stays sound against the unpruned mean.
      EXPECT_LE(std::abs(cd.mean - base.Finalize().mean),
                cd.mean_error_bound + base.Finalize().mean_error_bound)
          << "t=" << threshold;
      prev_bound = cd.mean_error_bound;
      prev_pruned = pruned.pruned_mass();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertifiedAlgebraTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace eclarity
