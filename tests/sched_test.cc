// Tests for the sim/sched modules: task patterns, schedule execution, the
// EAS baseline vs interface-driven scheduler, cluster placement, and the
// fuzzing capacity planner.

#include <gtest/gtest.h>

#include "src/hw/vendor.h"
#include "src/sched/cluster.h"
#include "src/sched/eas.h"
#include "src/sched/planner.h"
#include "src/sim/task.h"

namespace eclarity {
namespace {

// --- Task / RunSchedule --------------------------------------------------------

TEST(TaskTest, TranscodePatternIsBimodal) {
  const Task t = Task::Transcode("t", 3, 5, 1e7, 1e4);
  ASSERT_EQ(t.pattern.size(), 8u);
  EXPECT_DOUBLE_EQ(t.DemandAt(0).ops, 1e7);
  EXPECT_DOUBLE_EQ(t.DemandAt(2).ops, 1e7);
  EXPECT_DOUBLE_EQ(t.DemandAt(3).ops, 1e4);
  EXPECT_DOUBLE_EQ(t.DemandAt(7).ops, 1e4);
  EXPECT_DOUBLE_EQ(t.DemandAt(8).ops, 1e7);  // cycles
}

class FixedScheduler : public Scheduler {
 public:
  explicit FixedScheduler(Placement p) : placement_(p) {}
  std::string name() const override { return "fixed"; }
  Result<Placement> Place(const Task&, int, double, const CpuDevice&,
                          const std::vector<bool>&) override {
    return placement_;
  }

 private:
  Placement placement_;
};

TEST(RunScheduleTest, ExecutesAndAccountsProgress) {
  CpuDevice device(BigLittleProfile());
  std::vector<Task> tasks = {Task::Steady("s", 1e6, 0.0)};
  FixedScheduler scheduler({0, 3});
  auto result = RunSchedule(device, tasks, scheduler, 50,
                            Duration::Milliseconds(10.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quanta, 50);
  EXPECT_DOUBLE_EQ(result->total_ops_requested, 50e6);
  EXPECT_DOUBLE_EQ(result->total_ops_executed, 50e6);
  EXPECT_EQ(result->missed_quanta, 0);
  EXPECT_GT(result->total_energy.joules(), 0.0);
  EXPECT_NEAR(result->wall_time.seconds(), 0.5, 1e-9);
}

TEST(RunScheduleTest, OverloadedCoreMissesQuanta) {
  CpuDevice device(BigLittleProfile());
  // LITTLE core at the lowest OPP cannot keep up with this demand.
  std::vector<Task> tasks = {Task::Steady("s", 1e9, 0.0)};
  FixedScheduler scheduler({4, 0});
  auto result = RunSchedule(device, tasks, scheduler, 10,
                            Duration::Milliseconds(10.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_quanta, 10);
  EXPECT_LT(result->total_ops_executed, result->total_ops_requested);
}

TEST(RunScheduleTest, RejectsBadInput) {
  CpuDevice device(BigLittleProfile());
  FixedScheduler scheduler({0, 0});
  std::vector<Task> none;
  EXPECT_FALSE(
      RunSchedule(device, none, scheduler, 1, Duration::Milliseconds(10.0))
          .ok());
  std::vector<Task> too_many(9, Task::Steady("s", 1.0, 0.0));
  EXPECT_FALSE(RunSchedule(device, too_many, scheduler, 1,
                           Duration::Milliseconds(10.0))
                   .ok());
}

// --- Task energy interface -------------------------------------------------------

TEST(TaskInterfaceTest, MatchesDeviceEnergy) {
  const CpuProfile profile = BigLittleProfile();
  const Duration quantum = Duration::Milliseconds(10.0);
  const Task task = Task::Transcode("video", 2, 6, 2.2e7, 5e4);

  auto task_program = TaskEnergyInterface(task, profile, quantum);
  ASSERT_TRUE(task_program.ok()) << task_program.status().ToString();
  auto vendor = CpuVendorInterface(profile);
  ASSERT_TRUE(vendor.ok());
  Program merged = std::move(*vendor);
  ASSERT_TRUE(merged.Merge(*task_program).ok());
  Evaluator evaluator(merged);

  // Compare against actually running one quantum on the device.
  for (int phase : {0, 1, 2, 5}) {
    for (int kind : {0, 1}) {
      const int opp = kind == 0 ? 2 : 1;
      CpuDevice device(profile);
      const int core = kind == 0 ? 0 : 4;
      ASSERT_TRUE(device.SetOpp(core, opp).ok());
      const QuantumDemand& demand = task.DemandAt(phase);
      auto actual = device.RunQuantum(core, quantum, demand.ops,
                                      demand.memory_intensity);
      ASSERT_TRUE(actual.ok());
      auto predicted = evaluator.ExpectedEnergy(
          "E_task_video_quantum",
          {Value::Number(static_cast<double>(phase)),
           Value::Number(static_cast<double>(kind)),
           Value::Number(static_cast<double>(opp))},
          {});
      ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
      double predicted_j = predicted->joules();
      if (predicted_j > 500.0) {
        continue;  // infeasible candidate carries the 1 kJ penalty
      }
      EXPECT_NEAR(predicted_j, actual->energy.joules(),
                  1e-9 + actual->energy.joules() * 1e-6)
          << "phase=" << phase << " kind=" << kind;
    }
  }
}

TEST(TaskInterfaceTest, PenalisesInfeasiblePlacement) {
  const CpuProfile profile = BigLittleProfile();
  const Task task = Task::Steady("heavy", 1e9, 0.0);  // no core fits @10ms
  auto task_program =
      TaskEnergyInterface(task, profile, Duration::Milliseconds(10.0));
  ASSERT_TRUE(task_program.ok());
  auto vendor = CpuVendorInterface(profile);
  ASSERT_TRUE(vendor.ok());
  Program merged = std::move(*vendor);
  ASSERT_TRUE(merged.Merge(*task_program).ok());
  Evaluator evaluator(merged);
  auto energy = evaluator.ExpectedEnergy(
      "E_task_heavy_quantum",
      {Value::Number(0.0), Value::Number(1.0), Value::Number(0.0)}, {});
  ASSERT_TRUE(energy.ok());
  EXPECT_GT(energy->joules(), 999.0);
}

// --- EAS comparison: the paper's §1 claim ---------------------------------------

Result<ScheduleRunResult> RunEas(Scheduler& scheduler, int quanta) {
  CpuDevice device(BigLittleProfile());
  std::vector<Task> tasks = {
      Task::Transcode("video", 2, 6, 2.2e7, 5e4),
      Task::Steady("telemetry", 2e5, 0.8),
  };
  return RunSchedule(device, tasks, scheduler, quanta,
                     Duration::Milliseconds(10.0));
}

TEST(EasComparisonTest, InterfaceSchedulerBeatsProxyOnBimodalLoad) {
  const CpuProfile profile = BigLittleProfile();
  const Duration quantum = Duration::Milliseconds(10.0);
  std::vector<Task> tasks = {
      Task::Transcode("video", 2, 6, 2.2e7, 5e4),
      Task::Steady("telemetry", 2e5, 0.8),
  };

  UtilizationEasScheduler baseline(profile, quantum);
  auto baseline_result = RunEas(baseline, 400);
  ASSERT_TRUE(baseline_result.ok()) << baseline_result.status().ToString();

  auto interface_sched = InterfaceEasScheduler::Create(tasks, profile, quantum);
  ASSERT_TRUE(interface_sched.ok()) << interface_sched.status().ToString();
  auto interface_result = RunEas(**interface_sched, 400);
  ASSERT_TRUE(interface_result.ok()) << interface_result.status().ToString();

  // The utilisation proxy mispredicts the bimodal task at every phase
  // transition (the paper's complaint); the interface scheduler must drop
  // less work and spend less energy per unit of work actually done.
  EXPECT_LT(interface_result->missed_quanta, baseline_result->missed_quanta);
  EXPECT_GE(interface_result->total_ops_executed,
            baseline_result->total_ops_executed);
  const double interface_j_per_op = interface_result->total_energy.joules() /
                                    interface_result->total_ops_executed;
  const double baseline_j_per_op = baseline_result->total_energy.joules() /
                                   baseline_result->total_ops_executed;
  EXPECT_LT(interface_j_per_op, baseline_j_per_op);
}

TEST(EasComparisonTest, SchedulersAgreeOnSteadyLoad) {
  // With a steady task the EWMA converges; both schedulers should end up
  // within a few percent of each other.
  const CpuProfile profile = BigLittleProfile();
  const Duration quantum = Duration::Milliseconds(10.0);
  std::vector<Task> tasks = {Task::Steady("steady", 3e6, 0.2)};

  UtilizationEasScheduler baseline(profile, quantum);
  CpuDevice device_a(profile);
  auto a = RunSchedule(device_a, tasks, baseline, 300, quantum);
  ASSERT_TRUE(a.ok());

  auto sched = InterfaceEasScheduler::Create(tasks, profile, quantum);
  ASSERT_TRUE(sched.ok());
  CpuDevice device_b(profile);
  auto b = RunSchedule(device_b, tasks, **sched, 300, quantum);
  ASSERT_TRUE(b.ok());

  EXPECT_NEAR(a->total_energy.joules() / b->total_energy.joules(), 1.0, 0.10);
}

// --- Cluster placement -----------------------------------------------------------

TEST(ClusterTest, InterfacesPickTheRightNodeKind) {
  const std::vector<ClusterNodeType> nodes = {ComputeNodeType(),
                                              MemoryNodeType()};
  const std::vector<ClusterApp> apps = {
      {"compute-app", 5e9, 0.05},
      {"memory-app", 5e9, 0.95},
  };
  auto assignment = AssignWithInterfaces(nodes, apps);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_EQ((*assignment)[0], 0);  // compute app -> compute node
  EXPECT_EQ((*assignment)[1], 1);  // memory app -> big-memory node
}

TEST(ClusterTest, InformedPlacementBeatsBlind) {
  const std::vector<ClusterNodeType> nodes = {ComputeNodeType(),
                                              MemoryNodeType()};
  std::vector<ClusterApp> apps;
  for (int i = 0; i < 6; ++i) {
    // Adversarial arrival order: blind round-robin anti-correlates.
    apps.push_back({"m" + std::to_string(i), 3e9, 0.9});
    apps.push_back({"c" + std::to_string(i), 3e9, 0.1});
  }
  auto blind = RunPlacement(nodes, apps, AssignBlind(nodes, apps));
  ASSERT_TRUE(blind.ok());
  auto informed_assignment = AssignWithInterfaces(nodes, apps);
  ASSERT_TRUE(informed_assignment.ok());
  auto informed = RunPlacement(nodes, apps, *informed_assignment);
  ASSERT_TRUE(informed.ok());
  EXPECT_LT(informed->total_energy.joules(), blind->total_energy.joules());
}

TEST(ClusterTest, RunPlacementValidatesInput) {
  const std::vector<ClusterNodeType> nodes = {ComputeNodeType()};
  const std::vector<ClusterApp> apps = {{"a", 1e6, 0.5}};
  EXPECT_FALSE(RunPlacement(nodes, apps, {}).ok());
  EXPECT_FALSE(RunPlacement(nodes, apps, {7}).ok());
}

// --- Capacity planner -------------------------------------------------------------

TEST(PlannerTest, InterfacePlanFindsEnergyMinimum) {
  FuzzCampaignConfig config;
  auto plan = PlanWithInterface(config, 0.95);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(plan->machines, 1);
  EXPECT_LE(plan->machines, config.max_machines);
  EXPECT_EQ(plan->planning_energy.joules(), 0.0);
  EXPECT_GT(plan->campaign_energy.joules(), 0.0);
  // The campaign energy model is machine-count-insensitive in running
  // energy but deadline-constrained; the planner must pick a feasible m.
  Rng rng(5);
  CampaignResult actual = RunCampaign(config, plan->machines, 0.95, rng);
  EXPECT_TRUE(actual.met_target);
}

TEST(PlannerTest, TrialAndErrorBurnsPlanningEnergy) {
  FuzzCampaignConfig config;
  Rng rng(7);
  auto trial = PlanByTrialAndError(config, 0.95, rng);
  ASSERT_TRUE(trial.ok()) << trial.status().ToString();
  auto plan = PlanWithInterface(config, 0.95);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(trial->probes, 1);
  // Trial-and-error burns at least one campaign's worth of extra energy.
  EXPECT_GT(trial->planning_energy.joules(),
            plan->campaign_energy.joules() * 0.9);
  // Both land in the feasible region; the interface finds the U-shaped
  // optimum while trial probes only visit a handful of sizes.
  Rng check_rng(23);
  EXPECT_TRUE(RunCampaign(config, trial->machines, 0.95, check_rng).met_target);
  EXPECT_TRUE(RunCampaign(config, plan->machines, 0.95, check_rng).met_target);
}

TEST(PlannerTest, HigherCoverageCostsMore) {
  FuzzCampaignConfig config;
  auto p90 = PlanWithInterface(config, 0.90);
  auto p95 = PlanWithInterface(config, 0.95);
  ASSERT_TRUE(p90.ok() && p95.ok());
  // The paper's second question: the 90->95 increment is quantifiable.
  EXPECT_GT(p95->campaign_energy.joules(), p90->campaign_energy.joules());
}

TEST(CampaignTest, MoreMachinesReachTargetFaster) {
  FuzzCampaignConfig config;
  Rng rng(11);
  const CampaignResult slow = RunCampaign(config, 4, 0.9, rng);
  const CampaignResult fast = RunCampaign(config, 32, 0.9, rng);
  EXPECT_GT(slow.duration.seconds(), fast.duration.seconds());
}

}  // namespace
}  // namespace eclarity
