// Tests for the Fig. 2 system-stack model: resource managers as the agents
// of composition, hardware-layer swapping, and layer attribution.

#include <gtest/gtest.h>

#include "src/lang/parser.h"
#include "src/stack/stack.h"

namespace eclarity {
namespace {

Program MustParse(const char* source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// A three-layer stack: hardware -> runtime -> application.
constexpr char kHwA[] = R"(
interface E_cpu_op(n) { return n * 1nJ; }
interface E_mem_read(bytes) { return bytes * 0.1nJ; }
)";
constexpr char kHwB[] = R"(
interface E_cpu_op(n) { return n * 3nJ; }
interface E_mem_read(bytes) { return bytes * 0.5nJ; }
)";
constexpr char kRuntime[] = R"(
interface E_vm_dispatch(n_ops) {
  return E_cpu_op(n_ops * 12) + 2uJ;
}
)";
constexpr char kApp[] = R"(
interface E_handle_request(size) {
  ecv cached ~ bernoulli(0.5);
  if (cached) {
    return E_mem_read(size) + 1uJ;
  }
  return E_vm_dispatch(size * 4) + E_mem_read(size * 16) + 1uJ;
}
)";

SystemStack BuildStack(const char* hw_source) {
  SystemStack stack;
  ResourceManager hw("hardware");
  EXPECT_TRUE(hw.AddResource({"cpu+mem", MustParse(hw_source)}).ok());
  ResourceManager runtime("runtime");
  EXPECT_TRUE(runtime.AddGlue(kRuntime).ok());
  ResourceManager app("application");
  EXPECT_TRUE(app.AddGlue(kApp).ok());
  app.policy().SetBernoulli("E_handle_request.cached", 0.5);
  EXPECT_TRUE(stack.AddLayer(std::move(hw)).ok());
  EXPECT_TRUE(stack.AddLayer(std::move(runtime)).ok());
  EXPECT_TRUE(stack.AddLayer(std::move(app)).ok());
  return stack;
}

TEST(StackTest, ComposeAndEvaluate) {
  SystemStack stack = BuildStack(kHwA);
  auto iface = stack.Compose("E_handle_request");
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto energy = iface->Expected({Value::Number(100.0)}, stack.CombinedPolicy());
  ASSERT_TRUE(energy.ok()) << energy.status().ToString();
  // Hand computation: cached = 100*0.1nJ + 1uJ = 1.01uJ;
  // uncached = (400*12*1nJ + 2uJ) + 1600*0.1nJ + 1uJ = 4.8u+2u+0.16u+1u.
  const double cached = 100 * 0.1e-9 + 1e-6;
  const double uncached = 400 * 12 * 1e-9 + 2e-6 + 1600 * 0.1e-9 + 1e-6;
  EXPECT_NEAR(energy->joules(), 0.5 * cached + 0.5 * uncached, 1e-15);
}

TEST(StackTest, UnresolvedCompositionRejected) {
  SystemStack stack;
  ResourceManager app("application");
  ASSERT_TRUE(app.AddGlue(kApp).ok());
  ASSERT_TRUE(stack.AddLayer(std::move(app)).ok());
  auto iface = stack.Compose("E_handle_request");
  ASSERT_FALSE(iface.ok());
  EXPECT_EQ(iface.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(iface.status().message().find("E_vm_dispatch"), std::string::npos);
}

TEST(StackTest, SwapHardwareLayerChangesOnlyBottom) {
  SystemStack stack = BuildStack(kHwA);
  auto on_a = stack.Compose("E_handle_request");
  ASSERT_TRUE(on_a.ok());
  const double joules_a =
      on_a->Expected({Value::Number(100.0)}, stack.CombinedPolicy())->joules();

  ResourceManager hw_b("hardware");
  ASSERT_TRUE(hw_b.AddResource({"cpu+mem", MustParse(kHwB)}).ok());
  ASSERT_TRUE(stack.SwapLayer("hardware", std::move(hw_b)).ok());
  auto on_b = stack.Compose("E_handle_request");
  ASSERT_TRUE(on_b.ok()) << on_b.status().ToString();
  const double joules_b =
      on_b->Expected({Value::Number(100.0)}, stack.CombinedPolicy())->joules();
  EXPECT_GT(joules_b, joules_a);

  // The upper layers' source is untouched: only E_cpu_op/E_mem_read differ.
  const std::string src_a = on_a->ToSource();
  const std::string src_b = on_b->ToSource();
  EXPECT_NE(src_a, src_b);
  EXPECT_NE(src_a.find("E_vm_dispatch"), std::string::npos);
  EXPECT_NE(src_b.find("E_vm_dispatch"), std::string::npos);
}

TEST(StackTest, SwapUnknownLayerFails) {
  SystemStack stack = BuildStack(kHwA);
  ResourceManager other("gpu");
  EXPECT_EQ(stack.SwapLayer("gpu", std::move(other)).code(),
            StatusCode::kNotFound);
}

TEST(StackTest, DuplicateLayerRejected) {
  SystemStack stack;
  ASSERT_TRUE(stack.AddLayer(ResourceManager("hw")).ok());
  EXPECT_EQ(stack.AddLayer(ResourceManager("hw")).code(),
            StatusCode::kAlreadyExists);
}

TEST(StackTest, DuplicateResourceInterfaceRejected) {
  ResourceManager manager("layer");
  ASSERT_TRUE(
      manager.AddResource({"a", MustParse("interface E_x(n) { return 1J; }")})
          .ok());
  EXPECT_EQ(manager
                .AddResource(
                    {"b", MustParse("interface E_x(n) { return 2J; }")})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(StackTest, AttributionSumsToTotal) {
  SystemStack stack = BuildStack(kHwA);
  auto contributions = stack.AttributeByLayer("E_handle_request",
                                              {Value::Number(100.0)});
  ASSERT_TRUE(contributions.ok()) << contributions.status().ToString();
  ASSERT_EQ(contributions->size(), 3u);
  double fraction_sum = 0.0;
  for (const LayerContribution& c : *contributions) {
    EXPECT_GE(c.own_energy.joules(), 0.0) << c.layer;
    fraction_sum += c.fraction;
  }
  // The composition is linear in its energy literals, so own-contributions
  // partition the total exactly.
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
  // Hardware dominates in this stack (uncached path's cpu ops).
  EXPECT_EQ((*contributions)[0].layer, "hardware");
  EXPECT_GT((*contributions)[0].fraction, 0.3);
}

TEST(StackTest, PolicyProfilesFoldTopWins) {
  SystemStack stack = BuildStack(kHwA);
  // The app layer pinned cached ~ bernoulli(0.5); add a conflicting bottom
  // policy and verify the top (later) layer wins.
  ResourceManager hw("hardware");
  ASSERT_TRUE(hw.AddResource({"cpu+mem", MustParse(kHwA)}).ok());
  hw.policy().SetBernoulli("E_handle_request.cached", 0.0);
  ASSERT_TRUE(stack.SwapLayer("hardware", std::move(hw)).ok());
  const EcvProfile policy = stack.CombinedPolicy();
  const EcvSupport* support = policy.Find("E_handle_request", "cached");
  ASSERT_NE(support, nullptr);
  // 0.5 from the app layer, not 0.0 from hardware.
  ASSERT_EQ(support->outcomes.size(), 2u);
  EXPECT_NEAR(support->outcomes[0].second, 0.5, 1e-12);
}

TEST(StackTest, RoutedAttributionOverlapsAndCoversHardware) {
  SystemStack stack = BuildStack(kHwA);
  auto routed = stack.AttributeByLayer("E_handle_request",
                                       {Value::Number(100.0)});
  auto through = stack.AttributeRoutedThrough("E_handle_request",
                                              {Value::Number(100.0)});
  ASSERT_TRUE(routed.ok() && through.ok()) << through.status().ToString();
  ASSERT_EQ(through->size(), 3u);
  // The top layer routes everything; hardware routes its own share.
  EXPECT_NEAR((*through)[2].fraction, 1.0, 1e-9);  // application
  EXPECT_GT((*through)[0].fraction, 0.3);          // hardware
  // Routed-through >= own-terms for every layer (it includes callees).
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE((*through)[i].own_energy.joules() + 1e-12,
              (*routed)[i].own_energy.joules());
  }
}

TEST(StubOutInterfacesTest, BodiesReturnZeroKeepingSignatures) {
  Program program = MustParse(R"(
interface E_x(a, b) { return a * 1mJ + b * 2mJ; }
)");
  const Program stubbed = StubOutInterfaces(program);
  const InterfaceDecl* decl = stubbed.FindInterface("E_x");
  ASSERT_NE(decl, nullptr);
  EXPECT_EQ(decl->params.size(), 2u);
  Evaluator eval(stubbed);
  Rng rng(1);
  auto v = eval.EvalSampled("E_x", {Value::Number(3.0), Value::Number(4.0)},
                            {}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->energy().concrete().joules(), 0.0);
}

TEST(ZeroEnergyTermsTest, KillsLiteralsAndAbstractUnits) {
  Program program = MustParse(R"(
interface E_x(n) { return n * 5mJ + au("relu", n); }
)");
  const Program zeroed = ZeroEnergyTerms(program);
  Evaluator eval(zeroed);
  Rng rng(1);
  auto v = eval.EvalSampled("E_x", {Value::Number(10.0)}, {}, rng);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->energy().IsConcrete());
  EXPECT_DOUBLE_EQ(v->energy().concrete().joules(), 0.0);
}

}  // namespace
}  // namespace eclarity
