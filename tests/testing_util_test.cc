// Tests for src/iface/testing.h: divergence testing and energy budgets.

#include <gtest/gtest.h>

#include "src/iface/testing.h"

namespace eclarity {
namespace {

constexpr char kSource[] = R"(
interface E_op(n) {
  ecv hit ~ bernoulli(0.75);
  if (hit) { return n * 1mJ; }
  return n * 5mJ;
}
)";

EnergyInterface MakeIface() {
  auto iface = EnergyInterface::FromSource(kSource, "E_op");
  EXPECT_TRUE(iface.ok());
  return std::move(iface).value();
}

TEST(TestAgainstMeasurementTest, FlagsOnlyDivergentRows) {
  const EnergyInterface iface = MakeIface();
  // Expected energy: n * (0.75*1 + 0.25*5) mJ = n * 2 mJ.
  EnergyMeasureFn measure = [](const std::vector<Value>& args) -> Result<Energy> {
    const double n = args[0].number();
    // Inputs above 10 have a 30% regression.
    const double factor = n > 10.0 ? 1.3 : 1.0;
    return Energy::Millijoules(n * 2.0 * factor);
  };
  std::vector<std::vector<Value>> inputs = {
      {Value::Number(2.0)}, {Value::Number(8.0)}, {Value::Number(20.0)}};
  auto report = TestAgainstMeasurement(iface, inputs, measure, 0.10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 3u);
  EXPECT_FALSE(report->rows[0].flagged);
  EXPECT_FALSE(report->rows[1].flagged);
  EXPECT_TRUE(report->rows[2].flagged);
  EXPECT_EQ(report->flagged_count, 1);
  EXPECT_NEAR(report->max_divergence, 0.3, 1e-9);
  EXPECT_FALSE(report->AllWithinThreshold());
}

TEST(TestAgainstMeasurementTest, PerfectSystemPasses) {
  const EnergyInterface iface = MakeIface();
  EnergyMeasureFn measure = [](const std::vector<Value>& args) -> Result<Energy> {
    return Energy::Millijoules(args[0].number() * 2.0);
  };
  auto report = TestAgainstMeasurement(iface, {{Value::Number(4.0)}}, measure);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->AllWithinThreshold());
  EXPECT_LT(report->max_divergence, 1e-9);
}

TEST(TestAgainstMeasurementTest, InputValidationAndErrorPropagation) {
  const EnergyInterface iface = MakeIface();
  EnergyMeasureFn ok_measure = [](const std::vector<Value>&) -> Result<Energy> {
    return Energy::Joules(1.0);
  };
  EXPECT_FALSE(TestAgainstMeasurement(iface, {}, ok_measure).ok());
  EXPECT_FALSE(
      TestAgainstMeasurement(iface, {{Value::Number(1.0)}}, ok_measure, -0.1)
          .ok());
  EnergyMeasureFn bad_measure = [](const std::vector<Value>&) -> Result<Energy> {
    return InternalError("sensor offline");
  };
  auto report =
      TestAgainstMeasurement(iface, {{Value::Number(1.0)}}, bad_measure);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(CheckEnergyBudgetTest, ExactExceedProbability) {
  const EnergyInterface iface = MakeIface();
  // At n=2: 2 mJ with p=0.75, 10 mJ with p=0.25.
  auto tight = CheckEnergyBudget(iface, {Value::Number(2.0)},
                                 Energy::Millijoules(5.0), 0.20);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(tight->satisfied);  // exceed probability 0.25 > 0.20
  EXPECT_NEAR(tight->exceed_probability, 0.25, 1e-12);
  EXPECT_NEAR(tight->worst_case.millijoules(), 10.0, 1e-9);

  auto loose = CheckEnergyBudget(iface, {Value::Number(2.0)},
                                 Energy::Millijoules(5.0), 0.30);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->satisfied);

  auto generous = CheckEnergyBudget(iface, {Value::Number(2.0)},
                                    Energy::Millijoules(50.0), 0.0);
  ASSERT_TRUE(generous.ok());
  EXPECT_TRUE(generous->satisfied);
  EXPECT_EQ(generous->exceed_probability, 0.0);
}

TEST(CheckEnergyBudgetTest, BudgetExactlyAtAtomIsInclusive) {
  const EnergyInterface iface = MakeIface();
  // Budget exactly 10 mJ: P(X > 10 mJ) = 0.
  auto report = CheckEnergyBudget(iface, {Value::Number(2.0)},
                                  Energy::Millijoules(10.0), 0.0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied);
}

TEST(CheckEnergyBudgetTest, RejectsBadProbability) {
  const EnergyInterface iface = MakeIface();
  EXPECT_FALSE(CheckEnergyBudget(iface, {Value::Number(1.0)},
                                 Energy::Joules(1.0), -0.1)
                   .ok());
  EXPECT_FALSE(CheckEnergyBudget(iface, {Value::Number(1.0)},
                                 Energy::Joules(1.0), 1.5)
                   .ok());
}

}  // namespace
}  // namespace eclarity
