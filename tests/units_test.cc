// Unit tests for src/units: physical quantities and abstract energy units.

#include <gtest/gtest.h>

#include "src/units/abstract_energy.h"
#include "src/units/units.h"

namespace eclarity {
namespace {

TEST(EnergyTest, ConstructorsAgree) {
  EXPECT_DOUBLE_EQ(Energy::Millijoules(1500.0).joules(), 1.5);
  EXPECT_DOUBLE_EQ(Energy::Microjoules(2e6).joules(), 2.0);
  EXPECT_DOUBLE_EQ(Energy::Nanojoules(1e9).joules(), 1.0);
  EXPECT_DOUBLE_EQ(Energy::Picojoules(1e12).joules(), 1.0);
  EXPECT_DOUBLE_EQ(Energy::KilowattHours(1.0).joules(), 3.6e6);
}

TEST(EnergyTest, Arithmetic) {
  const Energy a = Energy::Joules(3.0);
  const Energy b = Energy::Joules(1.5);
  EXPECT_DOUBLE_EQ((a + b).joules(), 4.5);
  EXPECT_DOUBLE_EQ((a - b).joules(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).joules(), 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).joules(), 1.5);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((-a).joules(), -3.0);
}

TEST(EnergyTest, Comparisons) {
  EXPECT_LT(Energy::Joules(1.0), Energy::Joules(2.0));
  EXPECT_EQ(Energy::Millijoules(1000.0), Energy::Joules(1.0));
  EXPECT_GE(Energy::Joules(2.0), Energy::Joules(2.0));
}

TEST(EnergyTest, CompoundAssignment) {
  Energy e = Energy::Joules(1.0);
  e += Energy::Joules(2.0);
  EXPECT_DOUBLE_EQ(e.joules(), 3.0);
  e -= Energy::Joules(0.5);
  EXPECT_DOUBLE_EQ(e.joules(), 2.5);
  e *= 4.0;
  EXPECT_DOUBLE_EQ(e.joules(), 10.0);
}

TEST(PowerDurationTest, DimensionalAlgebra) {
  const Power p = Power::Watts(10.0);
  const Duration d = Duration::Seconds(3.0);
  EXPECT_DOUBLE_EQ((p * d).joules(), 30.0);
  EXPECT_DOUBLE_EQ((d * p).joules(), 30.0);
  const Energy e = Energy::Joules(30.0);
  EXPECT_DOUBLE_EQ((e / d).watts(), 10.0);
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::Milliseconds(1500.0).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Minutes(2.0).seconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::Hours(1.0).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::Seconds(7200.0).hours(), 2.0);
}

TEST(UnitsTest, ToStringPicksScale) {
  EXPECT_EQ(Energy::Joules(0.0124).ToString(), "12.4 mJ");
  EXPECT_EQ(Energy::Joules(1500.0).ToString(), "1.5 kJ");
  EXPECT_EQ(Power::Watts(0.002).ToString(), "2 mW");
  EXPECT_EQ(Duration::Seconds(0.000003).ToString(), "3 us");
}

// --- AbstractEnergy ----------------------------------------------------------

TEST(AbstractEnergyTest, ConcreteRoundTrip) {
  const AbstractEnergy e = AbstractEnergy::FromConcrete(Energy::Joules(2.5));
  EXPECT_TRUE(e.IsConcrete());
  EXPECT_DOUBLE_EQ(e.concrete().joules(), 2.5);
}

TEST(AbstractEnergyTest, UnitArithmetic) {
  const AbstractEnergy two_relu = AbstractEnergy::Unit("relu", 2.0);
  const AbstractEnergy mixed =
      two_relu + AbstractEnergy::Unit("conv2d", 3.0) * 2.0;
  EXPECT_DOUBLE_EQ(mixed.Coefficient("relu"), 2.0);
  EXPECT_DOUBLE_EQ(mixed.Coefficient("conv2d"), 6.0);
  EXPECT_DOUBLE_EQ(mixed.Coefficient("absent"), 0.0);
  EXPECT_FALSE(mixed.IsConcrete());
}

TEST(AbstractEnergyTest, SubtractionCancelsTerms) {
  const AbstractEnergy a = AbstractEnergy::Unit("relu", 2.0);
  const AbstractEnergy diff = a - a;
  EXPECT_TRUE(diff.IsConcrete());  // term pruned to zero
  EXPECT_EQ(diff.concrete(), Energy::Zero());
}

TEST(AbstractEnergyTest, RatioOfSameUnit) {
  // Paper §3: "if a function consumes 2 ReLUs' worth and another 4 ReLUs'
  // worth, the latter consumes twice as much, regardless of Joules".
  const AbstractEnergy two = AbstractEnergy::Unit("relu", 2.0);
  const AbstractEnergy four = AbstractEnergy::Unit("relu", 4.0);
  auto ratio = four.RatioTo(two);
  ASSERT_TRUE(ratio.ok());
  EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
}

TEST(AbstractEnergyTest, RatioOfDifferentUnitsFails) {
  const AbstractEnergy relu = AbstractEnergy::Unit("relu");
  const AbstractEnergy conv = AbstractEnergy::Unit("conv2d");
  EXPECT_FALSE(relu.RatioTo(conv).ok());
}

TEST(AbstractEnergyTest, RatioOfConcrete) {
  const AbstractEnergy a = AbstractEnergy::FromConcrete(Energy::Joules(6.0));
  const AbstractEnergy b = AbstractEnergy::FromConcrete(Energy::Joules(2.0));
  EXPECT_DOUBLE_EQ(a.RatioTo(b).value(), 3.0);
  EXPECT_FALSE(b.RatioTo(AbstractEnergy::FromConcrete(Energy::Zero())).ok());
}

TEST(AbstractEnergyTest, ResolveThroughCalibration) {
  EnergyCalibration cal;
  cal.Bind("relu", Energy::Microjoules(0.5));
  cal.Bind("conv2d", Energy::Microjoules(20.0));
  const AbstractEnergy e = AbstractEnergy::Unit("relu", 8.0) +
                           AbstractEnergy::Unit("conv2d", 2.0) +
                           AbstractEnergy::FromConcrete(Energy::Microjoules(1.0));
  auto resolved = e.Resolve(cal);
  ASSERT_TRUE(resolved.ok());
  EXPECT_NEAR(resolved.value().microjoules(), 8.0 * 0.5 + 2.0 * 20.0 + 1.0,
              1e-12);
}

TEST(AbstractEnergyTest, ResolveFailsOnUnboundUnit) {
  EnergyCalibration cal;
  cal.Bind("relu", Energy::Microjoules(0.5));
  const AbstractEnergy e = AbstractEnergy::Unit("mlp", 1.0);
  auto resolved = e.Resolve(cal);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
}

TEST(AbstractEnergyTest, CalibrationListsUnits) {
  EnergyCalibration cal;
  cal.Bind("b", Energy::Joules(1.0));
  cal.Bind("a", Energy::Joules(2.0));
  EXPECT_TRUE(cal.Has("a"));
  EXPECT_FALSE(cal.Has("c"));
  const auto units = cal.Units();
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0], "a");
  EXPECT_EQ(units[1], "b");
}

TEST(AbstractEnergyTest, ToStringShowsTermsAndConcrete) {
  const AbstractEnergy e = AbstractEnergy::Unit("relu", 3.0) +
                           AbstractEnergy::FromConcrete(Energy::Millijoules(2.0));
  EXPECT_EQ(e.ToString(), "3 relu + 2 mJ");
  EXPECT_EQ(AbstractEnergy().ToString(), "0 J");
}

}  // namespace
}  // namespace eclarity
