// Unit tests for src/util: Status/Result, Rng, stats and linear algebra.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"

namespace eclarity {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, UnavailableIsRetryableTelemetryFailure) {
  Status s = UnavailableError("nvml: counter read timed out");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: nvml: counter read timed out");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultDeathTest, ValueOnErrorAbortsWithStatusMessage) {
  // The abort is unconditional (not assert-based), so release builds die
  // just as loudly — and the message names the status that was dropped.
  Result<int> r = UnavailableError("telemetry gone");
  EXPECT_DEATH(r.value(), "Unavailable: telemetry gone");
  EXPECT_DEATH(*r, "Unavailable: telemetry gone");
}

Result<int> Doubler(Result<int> input) {
  ECLARITY_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> failed = Doubler(InternalError("boom"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int v) {
  if (v < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status Chain(int v) {
  ECLARITY_RETURN_IF_ERROR(FailIfNegative(v));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliRespectsEdgeProbabilities) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMeanNearP) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(Mean(xs), 5.0, 0.1);
  EXPECT_NEAR(Stddev(xs), 2.0, 0.1);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ones += rng.Categorical(weights) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(static_cast<double>(rng.Poisson(4.5)));
  }
  EXPECT_NEAR(Mean(xs), 4.5, 0.15);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(Mean(xs), 100.0, 1.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(rng.Exponential(2.0));
  }
  EXPECT_NEAR(Mean(xs), 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng forked = a.Fork();
  // The fork must not replay the parent's sequence.
  Rng b(41);
  b.NextUint64();  // consume the draw Fork() used
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (forked.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  Rng rng(43);
  ZipfSampler sampler(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[sampler.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  Rng rng(47);
  ZipfSampler sampler(1, 1.2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 0u);
  }
}

// --- Stats -------------------------------------------------------------------

TEST(StatsTest, MeanVarianceStddev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(Stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingletonDegenerate) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 5.0);
}

TEST(StatsTest, SummarizeErrors) {
  const ErrorSummary s = SummarizeErrors({0.01, 0.02, 0.03, 0.10});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.average, 0.04);
  EXPECT_DOUBLE_EQ(s.max, 0.10);
  EXPECT_DOUBLE_EQ(s.p50, 0.025);
}

TEST(LinearAlgebraTest, SolvesSquareSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2.0; a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0; a.At(1, 1) = -1.0;
  auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(LinearAlgebraTest, RejectsSingularSystem) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0; a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0; a.At(1, 1) = 4.0;
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LinearAlgebraTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.At(0, 0) = 0.0; a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0; a.At(1, 1) = 0.0;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 4.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(LinearAlgebraTest, LeastSquaresRecoversCoefficients) {
  // y = 3*x0 + 2*x1 with exact data (overdetermined).
  Matrix a(4, 2);
  std::vector<double> b(4);
  const double xs[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 3}};
  for (int r = 0; r < 4; ++r) {
    a.At(r, 0) = xs[r][0];
    a.At(r, 1) = xs[r][1];
    b[r] = 3.0 * xs[r][0] + 2.0 * xs[r][1];
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-9);
}

TEST(LinearAlgebraTest, NonNegativeLeastSquaresClampsNegatives) {
  // Model would prefer a negative coefficient; NNLS must keep it >= 0.
  Matrix a(3, 2);
  a.At(0, 0) = 1.0; a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0; a.At(1, 1) = 0.0;
  a.At(2, 0) = 0.0; a.At(2, 1) = 1.0;
  const std::vector<double> b = {1.0, 2.0, -1.0};
  auto x = NonNegativeLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_GE(x.value()[0], 0.0);
  EXPECT_GE(x.value()[1], 0.0);
}

TEST(LinearAlgebraTest, NonNegativeLeastSquaresExactFit) {
  Matrix a(3, 2);
  a.At(0, 0) = 2.0; a.At(0, 1) = 0.0;
  a.At(1, 0) = 0.0; a.At(1, 1) = 3.0;
  a.At(2, 0) = 1.0; a.At(2, 1) = 1.0;
  std::vector<double> b = {4.0, 6.0, 4.0};  // x = {2, 2}
  auto x = NonNegativeLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-6);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-6);
}

TEST(StatsTest, PearsonCorrelationPerfectAndInverse) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> up = {2, 4, 6, 8, 10};
  std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation(xs, {1, 1, 1, 1, 1}), 0.0);
}

}  // namespace
}  // namespace eclarity
