// eilc — command-line driver for EIL energy interfaces.
//
//   eilc check  FILE                     parse + static checks + summary
//   eilc print  FILE                     canonical pretty-printed source
//   eilc eval   FILE ENTRY ARGS... [--ecv NAME=VALUE|NAME~P]
//                                        expectation + exact distribution
//   eilc paths  FILE ENTRY ARGS...       enumerate ECV draw sequences
//   eilc bounds FILE ENTRY LO:HI...      guaranteed worst-case interval
//   eilc trace  FILE ENTRY ARGS... [--chrome-trace OUT.json]
//                                        energy provenance tree; optionally
//                                        a Chrome trace_event JSON dump
//
// Numeric ARGS are numbers; `true`/`false` are booleans. --ecv NAME=VALUE
// pins an ECV (VALUE in {true,false} or a number); --ecv NAME~P sets a
// Bernoulli probability.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 evaluation budget exhausted
// (max_steps / max_call_depth / max_paths).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/eval/interp.h"
#include "src/eval/interval.h"
#include "src/lang/checker.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"

namespace eclarity {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: eilc check|print FILE\n"
               "       eilc eval  FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]\n"
               "       eilc paths FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]\n"
               "       eilc bounds FILE ENTRY LO:HI...\n"
               "       eilc trace FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--chrome-trace OUT.json]\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 budget exhausted\n");
  return 2;
}

// Evaluation budgets (max_steps, max_call_depth, max_paths) exhausting is a
// distinct failure mode — the program may be fine but too big to analyse
// with the current limits — so it gets its own exit code.
int FailWith(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  if (status.code() == StatusCode::kResourceExhausted) {
    std::fprintf(stderr,
                 "evaluation budget exhausted (exit 3); raise the relevant "
                 "budget or simplify the entry call\n");
    return 3;
  }
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

Result<Value> ParseValueArg(const std::string& text) {
  if (text == "true") {
    return Value::Bool(true);
  }
  if (text == "false") {
    return Value::Bool(false);
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("cannot parse argument '" + text + "'");
  }
  return Value::Number(v);
}

// Parses trailing --ecv options into a profile; removes them from args.
Result<EcvProfile> ExtractProfile(std::vector<std::string>& args) {
  EcvProfile profile;
  std::vector<std::string> kept;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--ecv") {
      kept.push_back(args[i]);
      continue;
    }
    if (i + 1 >= args.size()) {
      return InvalidArgumentError("--ecv needs an argument");
    }
    const std::string spec = args[++i];
    const size_t eq = spec.find('=');
    const size_t tilde = spec.find('~');
    if (eq != std::string::npos) {
      ECLARITY_ASSIGN_OR_RETURN(Value v, ParseValueArg(spec.substr(eq + 1)));
      profile.SetFixed(spec.substr(0, eq), v);
    } else if (tilde != std::string::npos) {
      char* end = nullptr;
      const double p = std::strtod(spec.c_str() + tilde + 1, &end);
      if (end == nullptr || *end != '\0') {
        return InvalidArgumentError("bad probability in '" + spec + "'");
      }
      profile.SetBernoulli(spec.substr(0, tilde), p);
    } else {
      return InvalidArgumentError("--ecv expects NAME=VALUE or NAME~P");
    }
  }
  args = std::move(kept);
  return profile;
}

int Check(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  CheckOptions options;
  options.allow_any_unresolved = true;
  const auto problems = CheckProgram(*program, options);
  for (const Status& p : problems) {
    std::fprintf(stderr, "%s\n", p.ToString().c_str());
  }
  std::printf("%zu interface(s), %zu const(s)\n",
              program->interfaces().size(), program->consts().size());
  for (const InterfaceDecl& decl : program->interfaces()) {
    const auto ecvs = CollectEcvNames(decl);
    std::printf("  %s(%zu args)", decl.name.c_str(), decl.params.size());
    if (!ecvs.empty()) {
      std::printf("  ECVs:");
      for (const std::string& name : ecvs) {
        std::printf(" %s", name.c_str());
      }
    }
    std::printf("\n");
  }
  const auto imports = program->UnresolvedCallees();
  if (!imports.empty()) {
    std::printf("imports:");
    for (const std::string& name : imports) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return problems.empty() ? 0 : 1;
}

int Print(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", PrintProgram(*program).c_str());
  return 0;
}

int EvalOrPaths(const std::string& mode, const std::string& path,
                const std::string& entry, std::vector<std::string> rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }
  Evaluator evaluator(*program);
  if (mode == "paths") {
    auto outcomes = evaluator.Enumerate(entry, args, *profile);
    if (!outcomes.ok()) {
      return FailWith(outcomes.status());
    }
    for (const WeightedOutcome& o : *outcomes) {
      std::printf("p=%-10.6g %-16s", o.probability,
                  o.value.ToString().c_str());
      for (const auto& [name, value] : o.ecv_assignments) {
        std::printf(" %s=%s", name.c_str(), value.ToString().c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  auto dist = evaluator.EvalDistribution(entry, args, *profile);
  if (!dist.ok()) {
    return FailWith(dist.status());
  }
  std::printf("expected:     %s\n",
              Energy::Joules(dist->Mean()).ToString().c_str());
  std::printf("stddev:       %s\n",
              Energy::Joules(dist->Stddev()).ToString().c_str());
  std::printf("range:        [%s, %s]\n",
              Energy::Joules(dist->MinValue()).ToString().c_str(),
              Energy::Joules(dist->MaxValue()).ToString().c_str());
  std::printf("p95:          %s\n",
              Energy::Joules(dist->Quantile(0.95)).ToString().c_str());
  std::printf("distribution: %s\n", dist->ToString().c_str());
  return 0;
}

int Trace(const std::string& path, const std::string& entry,
          std::vector<std::string> rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::string chrome_out;
  std::vector<std::string> kept;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--chrome-trace") {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "--chrome-trace needs an output path\n");
        return 2;
      }
      chrome_out = rest[++i];
    } else {
      kept.push_back(rest[i]);
    }
  }
  rest = std::move(kept);
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }
  auto tree = ComputeProvenance(*program, entry, args, *profile);
  if (!tree.ok()) {
    return FailWith(tree.status());
  }
  std::printf("%s", RenderProvenanceTree(*tree).c_str());
  if (!chrome_out.empty()) {
    RecordingTraceSink sink;
    EvalOptions options;
    options.trace = &sink;
    Evaluator evaluator(*program, options);
    auto outcomes = evaluator.Enumerate(entry, args, *profile);
    if (!outcomes.ok()) {
      return FailWith(outcomes.status());
    }
    std::ofstream out(chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", chrome_out.c_str());
      return 1;
    }
    WriteChromeTrace(sink.TakeEvents(), entry, out);
    std::printf("chrome trace: %s\n", chrome_out.c_str());
  }
  return 0;
}

int Bounds(const std::string& path, const std::string& entry,
           const std::vector<std::string>& rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::vector<IntervalValue> args;
  for (const std::string& text : rest) {
    const size_t colon = text.find(':');
    if (colon == std::string::npos) {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad interval argument '%s'\n", text.c_str());
        return 1;
      }
      args.push_back(IntervalValue::NumberPoint(v));
    } else {
      const double lo = std::strtod(text.substr(0, colon).c_str(), nullptr);
      const double hi = std::strtod(text.substr(colon + 1).c_str(), nullptr);
      args.push_back(IntervalValue::Number(lo, hi));
    }
  }
  IntervalEvaluator evaluator(*program);
  auto bounds = evaluator.EvalInterval(entry, args);
  if (!bounds.ok()) {
    std::fprintf(stderr, "%s\n", bounds.status().ToString().c_str());
    return 1;
  }
  std::printf("guaranteed bounds: [%s, %s]\n",
              Energy::Joules(bounds->lo_joules).ToString().c_str(),
              Energy::Joules(bounds->hi_joules).ToString().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "check") {
    return Check(path);
  }
  if (command == "print") {
    return Print(path);
  }
  if (argc < 4) {
    return Usage();
  }
  const std::string entry = argv[3];
  std::vector<std::string> rest(argv + 4, argv + argc);
  if (command == "eval" || command == "paths") {
    return EvalOrPaths(command, path, entry, std::move(rest));
  }
  if (command == "trace") {
    return Trace(path, entry, std::move(rest));
  }
  if (command == "bounds") {
    return Bounds(path, entry, rest);
  }
  return Usage();
}

}  // namespace
}  // namespace eclarity

int main(int argc, char** argv) { return eclarity::Main(argc, argv); }
