// eilc — command-line driver for EIL energy interfaces.
//
//   eilc check  FILE                     parse + static checks + summary
//   eilc print  FILE                     canonical pretty-printed source
//   eilc eval   FILE ENTRY ARGS... [--ecv NAME=VALUE|NAME~P]
//               [--mode=enumerate|exact|bounded|moments] [--prune=T]
//               [--engine=tree|fastpath|bytecode]
//                                        expectation + exact distribution;
//                                        --mode selects the analytic
//                                        distribution algebra (answers carry
//                                        a certified +/- bound), --prune a
//                                        mass-pruning threshold for bounded
//                                        mode, --engine the execution engine
//                                        (default bytecode; all three are
//                                        bit-identical)
//   eilc paths  FILE ENTRY ARGS...       enumerate ECV draw sequences
//   eilc bounds FILE ENTRY LO:HI...      guaranteed worst-case interval
//   eilc trace  FILE ENTRY ARGS... [--chrome-trace OUT.json]
//                                        energy provenance tree; optionally
//                                        a Chrome trace_event JSON dump
//   eilc chaos  FILE ENTRY ARGS... [--plan=PLAN.json] [--reads=N]
//                                        audit the entry's prediction against
//                                        a fault-injected telemetry counter
//   eilc profile FILE ENTRY ARGS... [--repeat=N] [--sample=N]
//                                        run the entry N times on the
//                                        bytecode VM with the sampling
//                                        profiler attached and print hot
//                                        opcodes, hot instruction sites, and
//                                        per-interface attribution
//   eilc serve  FILE ENTRY ARGS... [--threads=N] [--requests=M] [--batch=K]
//               [--engine=tree|fastpath|bytecode] [--journal[=OUT.json]]
//                                        drive the concurrent query service
//                                        with N client threads x M mixed
//                                        queries, verify the run is
//                                        bit-identical to a single-threaded
//                                        replay, and report throughput,
//                                        sampled latency percentiles, the
//                                        self-accounted telemetry overhead
//                                        ratio, and cache/metric statistics;
//                                        --journal drains the flight
//                                        recorder (text to stdout, Chrome
//                                        trace JSON to OUT.json)
//
// Numeric ARGS are numbers; `true`/`false` are booleans. --ecv NAME=VALUE
// pins an ECV (VALUE in {true,false} or a number); --ecv NAME~P sets a
// Bernoulli probability.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 evaluation budget exhausted
// (max_steps / max_call_depth / max_paths), 4 telemetry unavailable (the
// chaos run ended with the counter's circuit breaker open), 5 determinism
// violation (a concurrent serve run diverged from its single-threaded
// replay).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/interp.h"
#include "src/eval/interval.h"
#include "src/eval/vm_profile.h"
#include "src/fault/guard.h"
#include "src/fault/inject.h"
#include "src/fault/plan.h"
#include "src/hw/counters.h"
#include "src/hw/gpu.h"
#include "src/lang/checker.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/obs/accuracy.h"
#include "src/obs/budget.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/svc/query_service.h"

namespace eclarity {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: eilc check|print FILE\n"
               "       eilc eval  FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--mode=enumerate|exact|bounded|moments] [--prune=T]"
               " [--engine=tree|fastpath|bytecode]\n"
               "       eilc paths FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]\n"
               "       eilc bounds FILE ENTRY LO:HI...\n"
               "       eilc trace FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--chrome-trace OUT.json]\n"
               "       eilc chaos FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--plan=PLAN.json] [--reads=N]\n"
               "       eilc profile FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--repeat=N] [--sample=N]\n"
               "       eilc serve FILE ENTRY ARGS... [--ecv NAME=V|NAME~P]"
               " [--threads=N] [--requests=M] [--batch=K]"
               " [--engine=tree|fastpath|bytecode] [--journal[=OUT.json]]\n"
               "exit codes:\n"
               "  0  success\n"
               "  1  error (I/O, parse, static check, evaluation)\n"
               "  2  usage\n"
               "  3  evaluation budget exhausted (max_steps / max_call_depth"
               " / max_paths)\n"
               "  4  telemetry unavailable (chaos ended with the counter's"
               " circuit open)\n"
               "  5  determinism violation (concurrent serve diverged from"
               " its single-threaded replay)\n");
  return 2;
}

// Evaluation budgets (max_steps, max_call_depth, max_paths) exhausting is a
// distinct failure mode — the program may be fine but too big to analyse
// with the current limits — so it gets its own exit code.
int FailWith(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  if (status.code() == StatusCode::kResourceExhausted) {
    std::fprintf(stderr,
                 "evaluation budget exhausted (exit 3); raise the relevant "
                 "budget or simplify the entry call\n");
    return 3;
  }
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

Result<Value> ParseValueArg(const std::string& text) {
  if (text == "true") {
    return Value::Bool(true);
  }
  if (text == "false") {
    return Value::Bool(false);
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("cannot parse argument '" + text + "'");
  }
  return Value::Number(v);
}

// Parses trailing --ecv options into a profile; removes them from args.
Result<EcvProfile> ExtractProfile(std::vector<std::string>& args) {
  EcvProfile profile;
  std::vector<std::string> kept;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--ecv") {
      kept.push_back(args[i]);
      continue;
    }
    if (i + 1 >= args.size()) {
      return InvalidArgumentError("--ecv needs an argument");
    }
    const std::string spec = args[++i];
    const size_t eq = spec.find('=');
    const size_t tilde = spec.find('~');
    if (eq != std::string::npos) {
      ECLARITY_ASSIGN_OR_RETURN(Value v, ParseValueArg(spec.substr(eq + 1)));
      profile.SetFixed(spec.substr(0, eq), v);
    } else if (tilde != std::string::npos) {
      char* end = nullptr;
      const double p = std::strtod(spec.c_str() + tilde + 1, &end);
      if (end == nullptr || *end != '\0') {
        return InvalidArgumentError("bad probability in '" + spec + "'");
      }
      profile.SetBernoulli(spec.substr(0, tilde), p);
    } else {
      return InvalidArgumentError("--ecv expects NAME=VALUE or NAME~P");
    }
  }
  args = std::move(kept);
  return profile;
}

int Check(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  CheckOptions options;
  options.allow_any_unresolved = true;
  const auto problems = CheckProgram(*program, options);
  for (const Status& p : problems) {
    std::fprintf(stderr, "%s\n", p.ToString().c_str());
  }
  std::printf("%zu interface(s), %zu const(s)\n",
              program->interfaces().size(), program->consts().size());
  for (const InterfaceDecl& decl : program->interfaces()) {
    const auto ecvs = CollectEcvNames(decl);
    std::printf("  %s(%zu args)", decl.name.c_str(), decl.params.size());
    if (!ecvs.empty()) {
      std::printf("  ECVs:");
      for (const std::string& name : ecvs) {
        std::printf(" %s", name.c_str());
      }
    }
    std::printf("\n");
  }
  const auto imports = program->UnresolvedCallees();
  if (!imports.empty()) {
    std::printf("imports:");
    for (const std::string& name : imports) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return problems.empty() ? 0 : 1;
}

int Print(const std::string& path) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", PrintProgram(*program).c_str());
  return 0;
}

// Parses and strips a --engine= flag from `rest`, writing the chosen
// execution engine (the bytecode VM stays the default). Returns 0 when the
// flag is absent or valid, 2 on a bad value. All engines are bit-identical;
// if bytecode compilation is impossible the evaluator transparently falls
// back to the fast path and counts the fallback in
// eclarity_eval_bytecode_fallback_total.
int ExtractEngine(std::vector<std::string>& rest, EvalEngine* engine) {
  std::vector<std::string> kept;
  int rc = 0;
  for (const std::string& arg : rest) {
    if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "tree") {
        *engine = EvalEngine::kTreeWalk;
      } else if (name == "fastpath") {
        *engine = EvalEngine::kFastPath;
      } else if (name == "bytecode") {
        *engine = EvalEngine::kBytecode;
      } else {
        std::fprintf(stderr, "--engine expects tree|fastpath|bytecode\n");
        rc = 2;
      }
      continue;
    }
    kept.push_back(arg);
  }
  rest = std::move(kept);
  return rc;
}

const char* EngineName(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kTreeWalk:
      return "tree";
    case EvalEngine::kFastPath:
      return "fastpath";
    case EvalEngine::kBytecode:
      return "bytecode";
  }
  return "unknown";
}

int EvalOrPaths(const std::string& mode, const std::string& path,
                const std::string& entry, std::vector<std::string> rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  EvalOptions options;
  if (const int rc = ExtractEngine(rest, &options.engine); rc != 0) {
    return rc;
  }
  bool analytic = false;
  std::vector<std::string> kept;
  for (const std::string& arg : rest) {
    if (arg.rfind("--mode=", 0) == 0) {
      const std::string name = arg.substr(7);
      if (name == "enumerate") {
        options.dist_mode = DistMode::kEnumerate;
      } else if (name == "exact") {
        options.dist_mode = DistMode::kAnalyticExact;
      } else if (name == "bounded") {
        options.dist_mode = DistMode::kAnalyticBounded;
      } else if (name == "moments") {
        options.dist_mode = DistMode::kAnalyticMoments;
      } else {
        std::fprintf(stderr,
                     "--mode expects enumerate|exact|bounded|moments\n");
        return 2;
      }
      analytic = options.dist_mode != DistMode::kEnumerate;
    } else if (arg.rfind("--prune=", 0) == 0) {
      char* end = nullptr;
      options.prune_threshold = std::strtod(arg.c_str() + 8, &end);
      if (end == nullptr || *end != '\0' || options.prune_threshold < 0.0 ||
          options.prune_threshold >= 1.0) {
        std::fprintf(stderr, "--prune expects a threshold in [0, 1)\n");
        return 2;
      }
    } else {
      kept.push_back(arg);
    }
  }
  rest = std::move(kept);
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }
  Evaluator evaluator(*program, options);
  if (mode == "paths") {
    auto outcomes = evaluator.Enumerate(entry, args, *profile);
    if (!outcomes.ok()) {
      return FailWith(outcomes.status());
    }
    for (const WeightedOutcome& o : *outcomes) {
      std::printf("p=%-10.6g %-16s", o.probability,
                  o.value.ToString().c_str());
      for (const auto& [name, value] : o.ecv_assignments) {
        std::printf(" %s=%s", name.c_str(), value.ToString().c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  if (analytic) {
    auto cd = evaluator.EvalCertified(entry, args, *profile);
    if (!cd.ok()) {
      return FailWith(cd.status());
    }
    std::printf("expected:     %s +/- %.6g J%s\n",
                Energy::Joules(cd->mean).ToString().c_str(),
                cd->mean_error_bound, cd->exact ? " (exact)" : "");
    std::printf("stddev:       %s\n",
                Energy::Joules(std::sqrt(cd->variance)).ToString().c_str());
    std::printf("range:        [%s, %s]\n",
                Energy::Joules(cd->min_joules).ToString().c_str(),
                Energy::Joules(cd->max_joules).ToString().c_str());
    std::printf("pruned mass:  %.6g\n", cd->pruned_mass);
    if (cd->has_distribution) {
      std::printf("distribution: %s\n", cd->distribution.ToString().c_str());
    }
    std::printf("engine:       analytic=%zu fallback=%zu\n",
                evaluator.analytic_hits(), evaluator.analytic_fallbacks());
    return 0;
  }
  auto dist = evaluator.EvalDistribution(entry, args, *profile);
  if (!dist.ok()) {
    return FailWith(dist.status());
  }
  std::printf("expected:     %s\n",
              Energy::Joules(dist->Mean()).ToString().c_str());
  std::printf("stddev:       %s\n",
              Energy::Joules(dist->Stddev()).ToString().c_str());
  std::printf("range:        [%s, %s]\n",
              Energy::Joules(dist->MinValue()).ToString().c_str(),
              Energy::Joules(dist->MaxValue()).ToString().c_str());
  std::printf("p95:          %s\n",
              Energy::Joules(dist->Quantile(0.95)).ToString().c_str());
  std::printf("distribution: %s\n", dist->ToString().c_str());
  return 0;
}

int Trace(const std::string& path, const std::string& entry,
          std::vector<std::string> rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::string chrome_out;
  std::vector<std::string> kept;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--chrome-trace") {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "--chrome-trace needs an output path\n");
        return 2;
      }
      chrome_out = rest[++i];
    } else {
      kept.push_back(rest[i]);
    }
  }
  rest = std::move(kept);
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }
  auto tree = ComputeProvenance(*program, entry, args, *profile);
  if (!tree.ok()) {
    return FailWith(tree.status());
  }
  std::printf("%s", RenderProvenanceTree(*tree).c_str());
  if (!chrome_out.empty()) {
    RecordingTraceSink sink;
    EvalOptions options;
    options.trace = &sink;
    Evaluator evaluator(*program, options);
    auto outcomes = evaluator.Enumerate(entry, args, *profile);
    if (!outcomes.ok()) {
      return FailWith(outcomes.status());
    }
    std::ofstream out(chrome_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", chrome_out.c_str());
      return 1;
    }
    WriteChromeTrace(sink.TakeEvents(), entry, out);
    std::printf("chrome trace: %s\n", chrome_out.c_str());
  }
  return 0;
}

// Audits the entry's predicted energy against a fault-injected telemetry
// counter: a synthetic GPU runs one kernel sized so its modeled energy is
// the prediction, and an NVML-style counter — armed with the fault plan,
// wrapped in retry and a circuit breaker — measures each span. The run is
// fully deterministic in the plan's seed. Exits 4 when the breaker is open
// at the end (telemetry unavailable).
int Chaos(const std::string& path, const std::string& entry,
          std::vector<std::string> rest) {
  std::string plan_path;
  long reads = 200;
  std::vector<std::string> kept;
  for (const std::string& arg : rest) {
    if (arg.rfind("--plan=", 0) == 0) {
      plan_path = arg.substr(7);
    } else if (arg.rfind("--reads=", 0) == 0) {
      char* end = nullptr;
      reads = std::strtol(arg.c_str() + 8, &end, 10);
      if (end == nullptr || *end != '\0' || reads <= 0) {
        std::fprintf(stderr, "--reads expects a positive integer\n");
        return 2;
      }
    } else {
      kept.push_back(arg);
    }
  }
  rest = std::move(kept);

  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }
  Evaluator evaluator(*program);
  auto dist = evaluator.EvalDistribution(entry, args, *profile);
  if (!dist.ok()) {
    return FailWith(dist.status());
  }
  const double predicted = dist->Mean();
  if (predicted <= 0.0) {
    std::fprintf(stderr, "entry predicts non-positive energy; nothing to "
                         "audit under faults\n");
    return 1;
  }

  FaultPlanSpec plan;  // default: zero faults
  if (!plan_path.empty()) {
    auto loaded = LoadFaultPlan(plan_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    plan = *loaded;
  }

  FaultInjector injector(plan);
  GpuDevice gpu(Rtx4090LikeProfile(), plan.seed ^ 0x6a09e667ULL);
  NvmlCounter nvml(gpu);
  nvml.ArmFaults(&injector);
  TelemetryGuard guard("gpu_nvml");
  AccuracyMonitor monitor;

  // One synthetic kernel whose modeled energy equals the prediction.
  KernelStats kernel;
  kernel.name = "chaos_span";
  kernel.instructions =
      predicted / gpu.profile().energy_per_instruction.joules();

  long measured_spans = 0;
  long rejected_spans = 0;
  long failed_spans = 0;
  Energy last_read;
  bool have_baseline = false;
  for (long i = 0; i < reads; ++i) {
    gpu.ExecuteKernel(kernel);
    if (!guard.AllowRead()) {
      ++rejected_spans;
      have_baseline = false;  // the span is lost; re-baseline when healed
      continue;
    }
    Result<Energy> read = nvml.ReadWithRetry();
    if (!read.ok()) {
      guard.RecordFailure();
      ++failed_spans;
      have_baseline = false;
      continue;
    }
    guard.RecordSuccess();
    if (have_baseline) {
      monitor.Record(entry, predicted, (read.value() - last_read).joules());
      ++measured_spans;
    }
    last_read = read.value();
    have_baseline = true;
  }

  const AccuracyMonitor::SourceStats stats = monitor.Stats(entry);
  std::printf("plan:          %s\n",
              plan.armed() ? (plan_path.empty() ? "(armed)" : plan_path.c_str())
                           : "(zero faults)");
  std::printf("predicted:     %s per span\n",
              Energy::Joules(predicted).ToString().c_str());
  std::printf("spans:         %ld measured, %ld failed, %ld rejected by the "
              "breaker (of %ld)\n",
              measured_spans, failed_spans, rejected_spans, reads);
  std::printf("retries:       %llu (backoff %s)\n",
              static_cast<unsigned long long>(nvml.retries()),
              nvml.backoff_spent().ToString().c_str());
  std::printf("mean |error|:  %.3f%%  (window %.3f%%, max %.3f%%)%s\n",
              stats.mean_abs_rel_error * 100.0,
              stats.windowed_abs_rel_error * 100.0,
              stats.max_abs_rel_error * 100.0,
              stats.drift_alarm ? "  [DRIFT]" : "");
  std::printf("breaker:       %s (%llu transitions)\n",
              TelemetryGuard::StateName(guard.state()),
              static_cast<unsigned long long>(guard.transitions()));
  for (const std::string& line : guard.transition_log()) {
    std::printf("  %s\n", line.c_str());
  }
  if (guard.open()) {
    std::fprintf(stderr, "telemetry unavailable: circuit open at end of run "
                         "(exit 4)\n");
    return 4;
  }
  return 0;
}

// Profiles the bytecode VM: evaluates the entry --repeat times with the
// sampling VmProfiler attached and prints the hot-opcode / hot-site /
// per-interface tables. The per-evaluator enumeration cache is disabled so
// every repeat actually executes the VM (a cached repeat would profile
// nothing), and the profiler's own cost is charged to the ObsBudget by the
// merge path, so the run also demonstrates the telemetry overhead story.
int Profile(const std::string& path, const std::string& entry,
            std::vector<std::string> rest) {
  long repeat = 1000;
  long sample = 8;
  std::vector<std::string> kept;
  for (const std::string& arg : rest) {
    auto parse_long = [&arg](const char* flag, long* out) {
      const size_t len = std::strlen(flag);
      if (arg.rfind(flag, 0) != 0) {
        return false;
      }
      char* end = nullptr;
      const long v = std::strtol(arg.c_str() + len, &end, 10);
      *out = (end == nullptr || *end != '\0' || v <= 0) ? 0 : v;
      return true;
    };
    if (parse_long("--repeat=", &repeat) || parse_long("--sample=", &sample)) {
      continue;
    }
    kept.push_back(arg);
  }
  if (repeat == 0 || sample == 0) {
    std::fprintf(stderr, "--repeat/--sample expect positive integers\n");
    return 2;
  }
  rest = std::move(kept);

  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }

  EvalOptions options;
  options.engine = EvalEngine::kBytecode;
  options.enum_cache_capacity = 0;
  VmProfiler profiler(static_cast<uint32_t>(sample));
  options.vm_profiler = &profiler;
  Evaluator evaluator(*program, options);
  double expected = 0.0;
  for (long i = 0; i < repeat; ++i) {
    auto dist = evaluator.EvalDistribution(entry, args, *profile);
    if (!dist.ok()) {
      return FailWith(dist.status());
    }
    expected = dist->Mean();
  }
  const VmProfiler::Snapshot snap = profiler.TakeSnapshot();
  if (snap.dispatches == 0) {
    std::fprintf(stderr,
                 "bytecode VM never ran (compilation fell back to the fast "
                 "path); nothing to profile\n");
    return 1;
  }
  std::printf("entry:        %s -> %s expected\n", entry.c_str(),
              Energy::Joules(expected).ToString().c_str());
  std::printf("repeats:      %ld (sample interval %ld, timer overhead "
              "%.1f ns)\n",
              repeat, sample, profiler.timer_overhead_ns());
  std::printf("%s", FormatVmProfile(snap).c_str());
  ObsBudget::Global().Publish();
  return 0;
}

// Drives the concurrent QueryService the way a resource manager would: N
// client threads each issue M queries against one published snapshot. The
// mix is mostly exact expectations with an exact distribution every 16th
// query and a Monte Carlo run (seeded by the global query index) every
// 64th. Every outcome is fingerprinted; after the concurrent run, a
// single-threaded replay through a fresh service must reproduce every
// fingerprint bit for bit — the service's determinism contract. Exits 5
// when any fingerprint diverges.
int Serve(const std::string& path, const std::string& entry,
          std::vector<std::string> rest) {
  size_t threads = 4;
  size_t requests = 256;
  size_t batch = 1;
  bool journal = false;
  std::string journal_out;
  QueryService::Options svc_options;
  if (const int rc = ExtractEngine(rest, &svc_options.eval.engine); rc != 0) {
    return rc;
  }
  std::vector<std::string> kept;
  for (const std::string& arg : rest) {
    if (arg == "--journal") {
      journal = true;
      continue;
    }
    if (arg.rfind("--journal=", 0) == 0) {
      journal = true;
      journal_out = arg.substr(10);
      continue;
    }
    auto parse_size = [&arg](const char* flag, size_t* out) {
      const size_t len = std::strlen(flag);
      if (arg.rfind(flag, 0) != 0) {
        return false;
      }
      char* end = nullptr;
      const long v = std::strtol(arg.c_str() + len, &end, 10);
      if (end == nullptr || *end != '\0' || v <= 0) {
        *out = 0;  // flag matched but value bad; caller reports usage
      } else {
        *out = static_cast<size_t>(v);
      }
      return true;
    };
    if (parse_size("--threads=", &threads) ||
        parse_size("--requests=", &requests) || parse_size("--batch=", &batch)) {
      continue;
    }
    kept.push_back(arg);
  }
  if (threads == 0 || requests == 0 || batch == 0) {
    std::fprintf(stderr,
                 "--threads/--requests/--batch expect positive integers\n");
    return 2;
  }
  rest = std::move(kept);

  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  auto profile = ExtractProfile(rest);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::vector<Value> args;
  for (const std::string& text : rest) {
    auto v = ParseValueArg(text);
    if (!v.ok()) {
      std::fprintf(stderr, "%s\n", v.status().ToString().c_str());
      return 1;
    }
    args.push_back(*v);
  }

  auto make_service = [&]() {
    return QueryService::Create(program->Clone(), svc_options, *profile);
  };
  auto service = make_service();
  if (!service.ok()) {
    return FailWith(service.status());
  }

  // The request log is a pure function of the global query index, so the
  // replay can regenerate it without any shared state.
  auto query_at = [&](size_t global) {
    Query query;
    query.interface = entry;
    query.args = args;
    if (global % 64 == 0) {
      query.kind = QueryKind::kMonteCarlo;
      query.seed = global;
      query.samples = 256;
    } else if (global % 16 == 0) {
      query.kind = QueryKind::kDistribution;
    } else {
      query.kind = QueryKind::kExpected;
    }
    return query;
  };

  // Concurrent run: per-(thread, request) fingerprints; errors abort the
  // serve (first status wins) rather than feeding the determinism check.
  std::vector<std::vector<std::string>> fingerprints(threads);
  std::vector<Status> failures(threads, OkStatus());
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<std::string>& out = fingerprints[t];
        out.reserve(requests);
        std::vector<Query> pending;
        for (size_t i = 0; i < requests; ++i) {
          pending.push_back(query_at(t * requests + i));
          const bool flush = pending.size() == batch || i + 1 == requests;
          if (!flush) {
            continue;
          }
          for (auto& result : (*service)->EvaluateBatch(pending)) {
            if (!result.ok()) {
              if (failures[t].ok()) {
                failures[t] = result.status();
              }
              return;
            }
            out.push_back(result->Fingerprint());
          }
          pending.clear();
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const Status& status : failures) {
    if (!status.ok()) {
      return FailWith(status);
    }
  }

  // Single-threaded replay through a fresh service; every fingerprint must
  // match the concurrent run.
  auto replay = make_service();
  if (!replay.ok()) {
    return FailWith(replay.status());
  }
  size_t divergences = 0;
  for (size_t t = 0; t < threads; ++t) {
    for (size_t i = 0; i < requests; ++i) {
      auto result = (*replay)->Dispatch(query_at(t * requests + i));
      if (!result.ok()) {
        return FailWith(result.status());
      }
      if (result->Fingerprint() != fingerprints[t][i]) {
        ++divergences;
      }
    }
  }

  const size_t total = threads * requests;
  std::printf("served:       %zu queries (%zu threads x %zu, batch %zu)\n",
              total, threads, requests, batch);
  std::printf("engine:       %s\n", EngineName(svc_options.eval.engine));
  std::printf("throughput:   %.0f queries/s over %.3f s\n",
              elapsed > 0.0 ? total / elapsed : 0.0, elapsed);
  const QueryService::CacheStats stats = (*service)->TotalCacheStats();
  std::printf("cache:        %llu lookups, %llu hits, %llu misses, "
              "%llu evictions (%zu resident / %zu capacity)\n",
              static_cast<unsigned long long>(stats.lookups()),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions), stats.size,
              stats.capacity);
  const auto shards = (*service)->PerShardCacheStats();
  std::printf("shards:       %zu;", shards.size());
  for (const QueryService::CacheStats& shard : shards) {
    std::printf(" %llu", static_cast<unsigned long long>(shard.lookups()));
  }
  std::printf(" lookups\n");
  std::printf("determinism:  %zu/%zu fingerprints match the single-threaded "
              "replay\n",
              total - divergences, total);
  // Sampled per-kind latency percentiles (the serve summary line the docs
  // promise). Kinds that never sampled a query print nothing.
  for (const char* kind : {"expected", "distribution", "montecarlo",
                           "sample"}) {
    const LatencyHistogram& hist = MetricsRegistry::Global().GetLatencyHistogram(
        std::string("eclarity_svc_latency_ns_") + kind);
    if (hist.Count() == 0) {
      continue;
    }
    std::printf("latency:      %-12s p50 %llu ns, p90 %llu ns, p99 %llu ns, "
                "p99.9 %llu ns (%llu sampled)\n",
                kind,
                static_cast<unsigned long long>(hist.QuantileNs(0.5)),
                static_cast<unsigned long long>(hist.QuantileNs(0.9)),
                static_cast<unsigned long long>(hist.QuantileNs(0.99)),
                static_cast<unsigned long long>(hist.QuantileNs(0.999)),
                static_cast<unsigned long long>(hist.Count()));
  }
  ObsBudget::Global().Publish();
  std::printf("obs overhead: %.6f of observed work "
              "(eclarity_obs_overhead_ratio; budget < 0.01)\n",
              ObsBudget::Global().OverheadRatio());
  if (journal) {
    const std::vector<JournalEvent> events = Journal::Global().Drain();
    std::printf("journal:      %zu events drained (%llu recorded, %llu "
                "dropped to ring wraps)\n",
                events.size(),
                static_cast<unsigned long long>(
                    Journal::Global().TotalRecorded()),
                static_cast<unsigned long long>(
                    Journal::Global().TotalDropped()));
    if (!journal_out.empty()) {
      std::ofstream out(journal_out);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", journal_out.c_str());
        return 1;
      }
      WriteJournalChromeTrace(events, out);
      std::printf("journal trace: %s\n", journal_out.c_str());
    } else {
      std::printf("%s", FormatJournal(events).c_str());
    }
  }
  std::printf("\n--- metrics (Prometheus text) ---\n%s",
              MetricsRegistry::Global().ToPrometheusText().c_str());
  if (divergences > 0) {
    std::fprintf(stderr,
                 "determinism violation: %zu of %zu outcomes diverged from "
                 "the single-threaded replay (exit 5)\n",
                 divergences, total);
    return 5;
  }
  return 0;
}

int Bounds(const std::string& path, const std::string& entry,
           const std::vector<std::string>& rest) {
  auto source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = ParseProgram(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::vector<IntervalValue> args;
  for (const std::string& text : rest) {
    const size_t colon = text.find(':');
    if (colon == std::string::npos) {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad interval argument '%s'\n", text.c_str());
        return 1;
      }
      args.push_back(IntervalValue::NumberPoint(v));
    } else {
      const double lo = std::strtod(text.substr(0, colon).c_str(), nullptr);
      const double hi = std::strtod(text.substr(colon + 1).c_str(), nullptr);
      args.push_back(IntervalValue::Number(lo, hi));
    }
  }
  IntervalEvaluator evaluator(*program);
  auto bounds = evaluator.EvalInterval(entry, args);
  if (!bounds.ok()) {
    std::fprintf(stderr, "%s\n", bounds.status().ToString().c_str());
    return 1;
  }
  std::printf("guaranteed bounds: [%s, %s]\n",
              Energy::Joules(bounds->lo_joules).ToString().c_str(),
              Energy::Joules(bounds->hi_joules).ToString().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "check") {
    return Check(path);
  }
  if (command == "print") {
    return Print(path);
  }
  if (argc < 4) {
    return Usage();
  }
  const std::string entry = argv[3];
  std::vector<std::string> rest(argv + 4, argv + argc);
  if (command == "eval" || command == "paths") {
    return EvalOrPaths(command, path, entry, std::move(rest));
  }
  if (command == "trace") {
    return Trace(path, entry, std::move(rest));
  }
  if (command == "chaos") {
    return Chaos(path, entry, std::move(rest));
  }
  if (command == "profile") {
    return Profile(path, entry, std::move(rest));
  }
  if (command == "serve") {
    return Serve(path, entry, std::move(rest));
  }
  if (command == "bounds") {
    return Bounds(path, entry, rest);
  }
  return Usage();
}

}  // namespace
}  // namespace eclarity

int main(int argc, char** argv) { return eclarity::Main(argc, argv); }
